"""The household downlink rate series generator.

Composes the diurnal pattern, the on/off session process, per-session
rates, and the BitTorrent overlay into a sampled rate series, capped by
the effective capacity of the path (line rate or TCP ceiling, whichever
binds). This series is the ground truth that measurement clients sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..behavior.demand import DemandProcess
from ..exceptions import DatasetError
from ..units import SECONDS_PER_DAY, SECONDS_PER_HOUR
from .bittorrent import draw_bt_sessions
from .diurnal import diurnal_weight
from .sessions import draw_on_intervals, intervals_to_mask

__all__ = ["UsageSeries", "generate_usage_series"]

#: Mean length of an active household session, in seconds (~50 min; long
#: sessions are what make hourly and 30-second peak estimates agree).
MEAN_ON_S = 3000.0
#: Mean gap between candidate sessions, in seconds.
MEAN_OFF_S = 4200.0
#: Idle "background" traffic (updates, sync, telemetry) as a share of the
#: household's offered peak.
IDLE_SHARE = 0.004


@dataclass(frozen=True)
class UsageSeries:
    """A sampled rate series for one household.

    ``rates_mbps[i]`` is the average downlink rate over sample interval
    ``i``; ``up_rates_mbps`` is the uplink counterpart (BitTorrent
    seeding dominates it for P2P households); ``bt_active[i]`` marks
    intervals with BitTorrent activity; ``start_hour`` is the local hour
    of sample 0.
    """

    interval_s: float
    start_hour: float
    rates_mbps: np.ndarray
    bt_active: np.ndarray
    up_rates_mbps: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.rates_mbps.shape != self.bt_active.shape:
            raise DatasetError("rates and BT flags must align")
        if (
            self.up_rates_mbps is not None
            and self.up_rates_mbps.shape != self.rates_mbps.shape
        ):
            raise DatasetError("uplink rates must align with downlink")

    @property
    def n_samples(self) -> int:
        return int(self.rates_mbps.size)

    @property
    def duration_days(self) -> float:
        return self.n_samples * self.interval_s / SECONDS_PER_DAY

    def hours(self) -> np.ndarray:
        """Local hour of day of each sample's midpoint."""
        offsets_h = (
            (np.arange(self.n_samples) + 0.5) * self.interval_s / SECONDS_PER_HOUR
        )
        return (self.start_hour + offsets_h) % 24.0

    def without_bt(self) -> np.ndarray:
        """Rate samples outside BitTorrent-active intervals."""
        return self.rates_mbps[~self.bt_active]


def generate_usage_series(
    demand: DemandProcess,
    duration_days: float,
    interval_s: float,
    rng: np.random.Generator,
    start_hour: float = 0.0,
) -> UsageSeries:
    """Generate one household's downlink rate series.

    The household's candidate sessions come from an alternating renewal
    process; each candidate survives with probability proportional to the
    diurnal weight at its start (scaled by the household's activity
    level). Surviving sessions carry a lognormal rate around the
    household's typical session rate. BitTorrent households additionally
    run saturating BT sessions. Everything is capped at the effective
    capacity of the path.
    """
    if duration_days <= 0 or interval_s <= 0:
        raise DatasetError("duration and interval must be positive")
    duration_s = duration_days * SECONDS_PER_DAY
    n = int(round(duration_s / interval_s))
    if n < 10:
        raise DatasetError("window too short for a meaningful series")

    rates = np.full(
        n, demand.offered_peak_mbps * IDLE_SHARE, dtype=float
    )
    # Idle traffic flickers rather than hums.
    rates *= rng.uniform(0.0, 2.0, n)

    hours_at = lambda t_s: (start_hour + t_s / SECONDS_PER_HOUR) % 24.0

    intervals = draw_on_intervals(duration_s, MEAN_ON_S, MEAN_OFF_S, rng)
    if intervals.size:
        start_hours = hours_at(intervals[:, 0])
        keep_prob = np.minimum(
            1.0, 1.6 * demand.activity_level * diurnal_weight(start_hours)
        )
        kept = rng.random(len(intervals)) < keep_prob
        intervals = intervals[kept]

    midpoints = (np.arange(n) + 0.5) * interval_s
    typical_rate = demand.offered_peak_mbps * demand.rate_median_share
    for t_start, t_end in intervals:
        lo = int(np.searchsorted(midpoints, t_start, side="left"))
        hi = int(np.searchsorted(midpoints, t_end, side="left"))
        if hi <= lo:
            continue
        session_rate = typical_rate * float(
            np.exp(rng.normal(0.0, demand.burstiness_sigma))
        )
        # Within a session the rate wobbles around the session's level.
        wobble = np.exp(rng.normal(0.0, 0.25, hi - lo))
        rates[lo:hi] = np.maximum(rates[lo:hi], session_rate * wobble)

    # Uplink: requests/ACKs/uploads mirror the foreground downlink at the
    # household's upload share, with its own wobble.
    up_rates = rates * demand.upload_share * np.exp(
        rng.normal(0.0, 0.3, n)
    )

    bt_active = np.zeros(n, dtype=bool)
    if demand.bt_user:
        schedule = draw_bt_sessions(duration_s, rng)
        for (t_start, t_end), share in zip(
            schedule.intervals, schedule.rate_shares
        ):
            lo = int(np.searchsorted(midpoints, t_start, side="left"))
            hi = int(np.searchsorted(midpoints, t_end, side="left"))
            if hi <= lo:
                continue
            bt_rate = share * demand.ceiling_mbps
            wobble = np.exp(rng.normal(0.0, 0.1, hi - lo))
            rates[lo:hi] = np.maximum(rates[lo:hi], bt_rate * wobble)
            # Seeding saturates the (much thinner) uplink.
            up_wobble = np.exp(rng.normal(0.0, 0.1, hi - lo))
            up_rates[lo:hi] = np.maximum(
                up_rates[lo:hi],
                0.8 * demand.up_ceiling_mbps * up_wobble,
            )
            bt_active[lo:hi] = True

    np.minimum(rates, demand.ceiling_mbps, out=rates)
    np.minimum(up_rates, demand.up_ceiling_mbps, out=up_rates)
    return UsageSeries(
        interval_s=interval_s,
        start_hour=start_hour,
        rates_mbps=rates,
        bt_active=bt_active,
        up_rates_mbps=up_rates,
    )
