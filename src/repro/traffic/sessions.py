"""On/off session processes over a sampling grid.

Household activity is modeled as an alternating renewal process:
exponentially distributed "on" periods (someone is using the network)
separated by exponentially distributed "off" gaps. Long-ish on-periods
are what make hourly byte counters (the FCC gateways) see nearly the
same peaks as 30-second counters (Dasu) — sustained sessions dominate
the 95th percentile in both views.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DatasetError

__all__ = ["draw_on_intervals", "intervals_to_mask"]


def draw_on_intervals(
    duration_s: float,
    mean_on_s: float,
    mean_off_s: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw the ON intervals of an alternating renewal process.

    Returns an array of shape ``(k, 2)`` with ``[start, end)`` times in
    seconds, clipped to ``[0, duration_s)``. The process starts in a
    random phase so that series of different users are not aligned.
    """
    if duration_s <= 0:
        raise DatasetError(f"duration must be positive, got {duration_s}")
    if mean_on_s <= 0 or mean_off_s <= 0:
        raise DatasetError("mean on/off durations must be positive")

    cycle = mean_on_s + mean_off_s
    n_cycles = int(duration_s / cycle * 3) + 10
    ons = rng.exponential(mean_on_s, n_cycles)
    offs = rng.exponential(mean_off_s, n_cycles)
    # Interleave off/on, starting with a (possibly zero-length) off gap.
    segments = np.empty(2 * n_cycles)
    segments[0::2] = offs
    segments[1::2] = ons
    # Random initial phase: discard a random prefix of the first gap.
    segments[0] *= rng.random()
    edges = np.concatenate([[0.0], np.cumsum(segments)])
    starts = edges[1:-1:2]
    ends = edges[2::2]
    keep = starts < duration_s
    starts = starts[keep]
    ends = np.minimum(ends[keep], duration_s)
    return np.column_stack([starts, ends])


def intervals_to_mask(
    intervals: np.ndarray,
    n_samples: int,
    interval_s: float,
) -> np.ndarray:
    """Rasterize ``[start, end)`` intervals onto a sampling grid.

    Sample ``i`` covers ``[i * interval_s, (i+1) * interval_s)`` and is
    marked ``True`` when its midpoint falls inside any interval.
    """
    if n_samples <= 0 or interval_s <= 0:
        raise DatasetError("grid must have positive size and step")
    mask = np.zeros(n_samples, dtype=bool)
    if intervals.size == 0:
        return mask
    midpoints = (np.arange(n_samples) + 0.5) * interval_s
    for start, end in intervals:
        lo = int(np.searchsorted(midpoints, start, side="left"))
        hi = int(np.searchsorted(midpoints, end, side="left"))
        mask[lo:hi] = True
    return mask
