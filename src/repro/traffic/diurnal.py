"""Diurnal activity pattern of residential broadband traffic.

Residential demand shows a pronounced evening peak (roughly 20:00-22:00
local time), a smaller midday shoulder and a deep overnight trough. The
weight returned here multiplies a household's propensity to start an
active session at a given local hour; it peaks at 1.0 and bottoms out at
:data:`NIGHT_FLOOR`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EVENING_PEAK_HOUR", "NIGHT_FLOOR", "diurnal_weight", "mean_diurnal_weight"]

#: Local hour of the evening activity peak.
EVENING_PEAK_HOUR = 20.5
#: Local hour of the midday shoulder.
_MIDDAY_HOUR = 13.0
#: Minimum relative activity, reached in the dead of night.
NIGHT_FLOOR = 0.18

_EVENING_WIDTH_H = 3.0
_MIDDAY_WIDTH_H = 3.5
_MIDDAY_HEIGHT = 0.45


def _circular_gap_hours(hour: np.ndarray, center: float) -> np.ndarray:
    """Shortest distance on the 24-hour circle, in hours."""
    gap = np.abs(np.asarray(hour, dtype=float) % 24.0 - center)
    return np.minimum(gap, 24.0 - gap)


def diurnal_weight(hour: float | np.ndarray) -> np.ndarray | float:
    """Relative activity level at a local hour (scalar or array).

    A floor plus two Gaussian bumps (evening peak and midday shoulder),
    normalized so the evening peak is exactly 1.0.
    """
    h = np.asarray(hour, dtype=float)
    evening = np.exp(-0.5 * (_circular_gap_hours(h, EVENING_PEAK_HOUR) / _EVENING_WIDTH_H) ** 2)
    midday = _MIDDAY_HEIGHT * np.exp(
        -0.5 * (_circular_gap_hours(h, _MIDDAY_HOUR) / _MIDDAY_WIDTH_H) ** 2
    )
    raw = NIGHT_FLOOR + (1.0 - NIGHT_FLOOR) * np.maximum(evening, midday)
    if np.isscalar(hour):
        return float(raw)
    return raw


def mean_diurnal_weight() -> float:
    """Average of the diurnal weight over a full day."""
    hours = np.linspace(0.0, 24.0, 24 * 60, endpoint=False)
    return float(np.mean(diurnal_weight(hours)))
