"""Traffic generation: diurnal patterns, session processes, BitTorrent.

Produces the per-household downlink rate time series that the simulated
measurement clients sample. The generator works at the Dasu resolution
(one sample per ~30 s); coarser collectors (the FCC gateways' hourly byte
counters) aggregate it.
"""

from .bittorrent import BitTorrentSchedule, draw_bt_sessions
from .diurnal import diurnal_weight
from .generator import UsageSeries, generate_usage_series
from .sessions import draw_on_intervals, intervals_to_mask

__all__ = [
    "BitTorrentSchedule",
    "UsageSeries",
    "diurnal_weight",
    "draw_bt_sessions",
    "draw_on_intervals",
    "generate_usage_series",
    "intervals_to_mask",
]
