"""BitTorrent activity: long link-saturating sessions.

BitTorrent differs from the rest of household traffic in two ways the
paper leans on: sessions are long, and while one is active the client
tends to *saturate the link* (Choffnes & Bustamante, SIGCOMM'08 — the
paper's citation [9]). This is why the analyses are run both with and
without BitTorrent-active intervals, and why including them strengthens
the capacity-demand relationship.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DatasetError
from ..units import SECONDS_PER_DAY

__all__ = ["BitTorrentSchedule", "draw_bt_sessions"]


@dataclass(frozen=True)
class BitTorrentSchedule:
    """The BitTorrent sessions of one household over a window.

    ``intervals`` is an ``(k, 2)`` array of ``[start, end)`` seconds;
    ``rate_shares`` the per-session fraction of link capacity consumed.
    """

    intervals: np.ndarray
    rate_shares: np.ndarray

    def __post_init__(self) -> None:
        if len(self.intervals) != len(self.rate_shares):
            raise DatasetError("each BT session needs exactly one rate share")

    @property
    def n_sessions(self) -> int:
        return len(self.rate_shares)


def draw_bt_sessions(
    duration_s: float,
    rng: np.random.Generator,
    sessions_per_day: float = 0.8,
    mean_duration_s: float = 2.5 * 3600.0,
    rate_share_range: tuple[float, float] = (0.55, 0.92),
) -> BitTorrentSchedule:
    """Draw a household's BitTorrent sessions over an observation window.

    Session count is Poisson in the window length; starts are uniform
    (torrents are often left running overnight, so no diurnal shaping);
    durations are exponential with a multi-hour mean.
    """
    if duration_s <= 0:
        raise DatasetError(f"duration must be positive, got {duration_s}")
    if sessions_per_day < 0 or mean_duration_s <= 0:
        raise DatasetError("invalid BitTorrent session parameters")
    lo, hi = rate_share_range
    if not 0.0 < lo <= hi <= 1.0:
        raise DatasetError("rate shares must be fractions with lo <= hi")

    expected = sessions_per_day * duration_s / SECONDS_PER_DAY
    n = int(rng.poisson(expected))
    if n == 0:
        return BitTorrentSchedule(
            intervals=np.empty((0, 2)), rate_shares=np.empty(0)
        )
    starts = np.sort(rng.uniform(0.0, duration_s, n))
    durations = rng.exponential(mean_duration_s, n)
    ends = np.minimum(starts + durations, duration_s)
    shares = rng.uniform(lo, hi, n)
    return BitTorrentSchedule(
        intervals=np.column_stack([starts, ends]), rate_shares=shares
    )
