"""Columnar data plane: user records as numpy structured arrays.

The object path (:class:`~repro.datasets.records.UserRecord` lists) is
pleasant to program against but caps practical world size: a million
households means tens of millions of Python objects shuttled through
worker pickles, parent lists, and per-user analysis loops. This module
holds the same information as **one structured array per dataset** — one
row per (user, service period), user-level covariates repeated per row,
exactly like ``users.csv`` — and the hot paths (builder, cache, binning,
matching, eligibility filtering) operate on whole columns.

Representation contract
-----------------------

* **Stable field order.** :data:`ROW_DTYPE` fields follow the canonical
  CSV column order (:data:`USER_FIELDS` then :data:`PERIOD_FIELDS`),
  with a boolean presence flag immediately after every optional field.
  The order is part of the on-disk format; changing it (or any width)
  requires bumping :data:`COLUMNS_FORMAT_VERSION`.
* **Exact values.** Floats are stored as ``f8`` — bit-identical through
  any number of round trips. ``None``-able fields store NaN plus a
  presence flag, so a *missing* value can never be confused with a
  measured NaN, and object → rows → object reconstruction is
  value-identical (the equivalence suite in
  ``tests/datasets/test_columns.py`` locks this).
* **Grouped rows.** All rows of a user are contiguous and in
  observation order (ascending ``start_day``), mirroring both the
  builder's append order and the CSV layout. :class:`UserColumns`
  validates this on first per-user access.

Strings are fixed-width UTF-8 bytes (``S``); widths are generous for
every generator-produced value and conversion raises
:class:`~repro.exceptions.DatasetError` rather than silently truncating
third-party data.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core.upgrades import NetworkId, ServicePeriod
from ..exceptions import DatasetError
from .records import PeriodObservation, UserRecord

__all__ = [
    "COLUMNS_FORMAT_VERSION",
    "PERIOD_FIELDS",
    "ROW_DTYPE",
    "USER_FIELDS",
    "UserColumns",
    "records_to_rows",
    "rows_to_records",
]

#: Bump when :data:`ROW_DTYPE` changes in any way (field set, order, or
#: width); persisted ``users.npy`` shards carry this version.
COLUMNS_FORMAT_VERSION = 1

#: Canonical user-level CSV columns, in order (see ``datasets/io.py``).
USER_FIELDS = [
    "user_id", "source", "country", "region", "development", "vantage",
    "technology", "bt_user", "price_of_access_usd",
    "upgrade_cost_usd_per_mbps", "gdp_per_capita_usd",
    "plan_data_cap_gb", "web_latency_ms", "ndt_2014_latency_ms",
]
#: Canonical period-level CSV columns, in order.
PERIOD_FIELDS = [
    "isp", "prefix", "city", "start_day", "end_day", "capacity_mbps",
    "mean_mbps", "peak_mbps", "mean_no_bt_mbps", "peak_no_bt_mbps",
    "latency_ms", "loss_fraction", "capacity_up_mbps", "n_ndt_tests",
    "n_usage_samples", "hourly_mean_mbps", "mean_up_mbps", "peak_up_mbps",
]

#: ``None``-able fields and the flag column that records presence.
OPTIONAL_FLAGS = {
    "price_of_access_usd": "has_price_of_access",
    "upgrade_cost_usd_per_mbps": "has_upgrade_cost",
    "plan_data_cap_gb": "has_plan_data_cap",
    "web_latency_ms": "has_web_latency",
    "ndt_2014_latency_ms": "has_ndt_2014_latency",
    "hourly_mean_mbps": "has_hourly",
    "mean_up_mbps": "has_mean_up",
    "peak_up_mbps": "has_peak_up",
}

_STRING_WIDTHS = {
    "user_id": 48, "source": 8, "country": 40, "region": 40,
    "development": 24, "vantage": 16, "technology": 32,
    "isp": 64, "prefix": 32, "city": 64,
}


def _field_format(name: str) -> tuple:
    if name in _STRING_WIDTHS:
        return (name, f"S{_STRING_WIDTHS[name]}")
    if name == "bt_user" or name in OPTIONAL_FLAGS.values():
        return (name, "?")
    if name in ("n_ndt_tests", "n_usage_samples"):
        return (name, "i8")
    if name == "hourly_mean_mbps":
        return (name, "f8", (24,))
    return (name, "f8")


def _dtype_fields() -> list[tuple]:
    fields: list[tuple] = []
    for name in USER_FIELDS + PERIOD_FIELDS:
        fields.append(_field_format(name))
        flag = OPTIONAL_FLAGS.get(name)
        if flag is not None:
            fields.append(_field_format(flag))
    return fields


#: The structured row layout: CSV column order with presence flags.
ROW_DTYPE = np.dtype(_dtype_fields())


def _encode_str(value: str, field: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > _STRING_WIDTHS[field]:
        raise DatasetError(
            f"{field} value {value!r} exceeds the columnar width "
            f"({len(raw)} > {_STRING_WIDTHS[field]} bytes)"
        )
    return raw


def _decode_str(value: bytes) -> str:
    return value.decode("utf-8")


def records_to_rows(users: Sequence[UserRecord]) -> np.ndarray:
    """Flatten records into a structured array, one row per period.

    The inverse of :func:`rows_to_records`: every field (including the
    ``None``-ness of optional fields and NaNs inside hourly profiles)
    round-trips exactly.
    """
    n_rows = sum(len(u.observations) for u in users)
    rows = np.zeros(n_rows, dtype=ROW_DTYPE)
    start = 0
    for user in users:
        stop = start + len(user.observations)
        block = rows[start:stop]
        block["user_id"] = _encode_str(user.user_id, "user_id")
        block["source"] = _encode_str(user.source, "source")
        block["country"] = _encode_str(user.country, "country")
        block["region"] = _encode_str(user.region, "region")
        block["development"] = _encode_str(user.development, "development")
        block["vantage"] = _encode_str(user.vantage, "vantage")
        block["technology"] = _encode_str(user.technology, "technology")
        block["bt_user"] = user.bt_user
        _set_optional(block, "price_of_access_usd", user.price_of_access_usd)
        _set_optional(
            block, "upgrade_cost_usd_per_mbps", user.upgrade_cost_usd_per_mbps
        )
        block["gdp_per_capita_usd"] = user.gdp_per_capita_usd
        _set_optional(block, "plan_data_cap_gb", user.plan_data_cap_gb)
        _set_optional(block, "web_latency_ms", user.web_latency_ms)
        _set_optional(block, "ndt_2014_latency_ms", user.ndt_2014_latency_ms)
        for offset, obs in enumerate(user.observations):
            row = block[offset]
            p = obs.period
            row["isp"] = _encode_str(p.network.isp, "isp")
            row["prefix"] = _encode_str(p.network.prefix, "prefix")
            row["city"] = _encode_str(p.network.city, "city")
            row["start_day"] = p.start_day
            row["end_day"] = p.end_day
            row["capacity_mbps"] = p.capacity_mbps
            row["mean_mbps"] = p.mean_mbps
            row["peak_mbps"] = p.peak_mbps
            row["mean_no_bt_mbps"] = p.mean_no_bt_mbps
            row["peak_no_bt_mbps"] = p.peak_no_bt_mbps
            row["latency_ms"] = obs.latency_ms
            row["loss_fraction"] = obs.loss_fraction
            row["capacity_up_mbps"] = obs.capacity_up_mbps
            row["n_ndt_tests"] = obs.n_ndt_tests
            row["n_usage_samples"] = obs.n_usage_samples
            if obs.hourly_mean_mbps is None:
                row["hourly_mean_mbps"] = np.nan
                row["has_hourly"] = False
            else:
                row["hourly_mean_mbps"] = obs.hourly_mean_mbps
                row["has_hourly"] = True
            _set_scalar_optional(row, "mean_up_mbps", obs.mean_up_mbps)
            _set_scalar_optional(row, "peak_up_mbps", obs.peak_up_mbps)
        start = stop
    return rows


def _set_optional(block: np.ndarray, field: str, value: float | None) -> None:
    flag = OPTIONAL_FLAGS[field]
    if value is None:
        block[field] = np.nan
        block[flag] = False
    else:
        block[field] = value
        block[flag] = True


def _set_scalar_optional(row, field: str, value: float | None) -> None:
    flag = OPTIONAL_FLAGS[field]
    if value is None:
        row[field] = np.nan
        row[flag] = False
    else:
        row[field] = value
        row[flag] = True


def _get_optional(row, field: str) -> float | None:
    return float(row[field]) if bool(row[OPTIONAL_FLAGS[field]]) else None


def _record_from_rows(block: np.ndarray) -> UserRecord:
    """Rebuild one user's record from its contiguous row block."""
    first = block[0]
    observations = []
    for row in block:
        period = ServicePeriod(
            user_id=_decode_str(first["user_id"]),
            network=NetworkId(
                isp=_decode_str(row["isp"]),
                prefix=_decode_str(row["prefix"]),
                city=_decode_str(row["city"]),
            ),
            start_day=float(row["start_day"]),
            end_day=float(row["end_day"]),
            capacity_mbps=float(row["capacity_mbps"]),
            mean_mbps=float(row["mean_mbps"]),
            peak_mbps=float(row["peak_mbps"]),
            mean_no_bt_mbps=float(row["mean_no_bt_mbps"]),
            peak_no_bt_mbps=float(row["peak_no_bt_mbps"]),
        )
        hourly = None
        if bool(row["has_hourly"]):
            hourly = tuple(float(v) for v in row["hourly_mean_mbps"])
        observations.append(
            PeriodObservation(
                period=period,
                latency_ms=float(row["latency_ms"]),
                loss_fraction=float(row["loss_fraction"]),
                capacity_up_mbps=float(row["capacity_up_mbps"]),
                n_ndt_tests=int(row["n_ndt_tests"]),
                n_usage_samples=int(row["n_usage_samples"]),
                hourly_mean_mbps=hourly,
                mean_up_mbps=_get_optional(row, "mean_up_mbps"),
                peak_up_mbps=_get_optional(row, "peak_up_mbps"),
            )
        )
    return UserRecord(
        user_id=_decode_str(first["user_id"]),
        source=_decode_str(first["source"]),
        country=_decode_str(first["country"]),
        region=_decode_str(first["region"]),
        development=_decode_str(first["development"]),
        vantage=_decode_str(first["vantage"]),
        technology=_decode_str(first["technology"]),
        bt_user=bool(first["bt_user"]),
        observations=tuple(observations),
        price_of_access_usd=_get_optional(first, "price_of_access_usd"),
        upgrade_cost_usd_per_mbps=_get_optional(
            first, "upgrade_cost_usd_per_mbps"
        ),
        gdp_per_capita_usd=float(first["gdp_per_capita_usd"]),
        plan_data_cap_gb=_get_optional(first, "plan_data_cap_gb"),
        web_latency_ms=_get_optional(first, "web_latency_ms"),
        ndt_2014_latency_ms=_get_optional(first, "ndt_2014_latency_ms"),
    )


def rows_to_records(rows: np.ndarray) -> list[UserRecord]:
    """Materialize records from a structured array (inverse of
    :func:`records_to_rows`)."""
    return list(UserColumns(rows).iter_records())


class UserColumns:
    """A dataset of user records held as one structured array.

    Thin and immutable by convention: every transformation
    (:meth:`select_users`, :meth:`concat`) returns a new instance. The
    per-user index (row runs, current-period row per user) is built
    lazily on first access, so loading a memory-mapped shard and
    slicing a few columns never touches most of the file.
    """

    def __init__(self, rows: np.ndarray) -> None:
        rows = np.asarray(rows)
        if rows.dtype != ROW_DTYPE:
            raise DatasetError(
                "structured rows do not match the columnar schema "
                f"(format {COLUMNS_FORMAT_VERSION}); rebuild the shard"
            )
        if rows.ndim != 1:
            raise DatasetError("columnar rows must be one-dimensional")
        self._rows = rows
        self._starts: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        self._current_cache: dict[str, np.ndarray] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def empty(cls) -> "UserColumns":
        return cls(np.zeros(0, dtype=ROW_DTYPE))

    @classmethod
    def from_records(cls, users: Sequence[UserRecord]) -> "UserColumns":
        return cls(records_to_rows(users))

    @classmethod
    def concat(cls, parts: Iterable["UserColumns | np.ndarray"]) -> "UserColumns":
        """Concatenate shards in the given order (builder submission
        order, for the byte-identical ``--jobs`` guarantee)."""
        arrays = [
            p.rows if isinstance(p, UserColumns) else np.asarray(p)
            for p in parts
        ]
        arrays = [a for a in arrays if a.size]
        if not arrays:
            return cls.empty()
        if len(arrays) == 1:
            return cls(arrays[0])
        return cls(np.concatenate(arrays))

    # -- shape ------------------------------------------------------------

    @property
    def rows(self) -> np.ndarray:
        return self._rows

    @property
    def n_rows(self) -> int:
        return int(self._rows.size)

    @property
    def nbytes(self) -> int:
        return int(self._rows.nbytes)

    def _index(self) -> tuple[np.ndarray, np.ndarray]:
        if self._starts is None:
            ids = self._rows["user_id"]
            if ids.size == 0:
                starts = np.zeros(0, dtype=np.int64)
            else:
                change = np.flatnonzero(ids[1:] != ids[:-1]) + 1
                starts = np.concatenate(
                    (np.zeros(1, dtype=np.int64), change)
                ).astype(np.int64)
            counts = np.diff(
                np.concatenate((starts, [np.int64(ids.size)]))
            ).astype(np.int64)
            if ids.size and np.unique(ids).size != starts.size:
                raise DatasetError(
                    "rows of each user must be contiguous (grouped by "
                    "user_id in observation order)"
                )
            self._starts, self._counts = starts, counts
        return self._starts, self._counts

    @property
    def user_starts(self) -> np.ndarray:
        """First row index of each user (users in row order)."""
        return self._index()[0]

    @property
    def user_counts(self) -> np.ndarray:
        """Number of period rows per user."""
        return self._index()[1]

    @property
    def n_users(self) -> int:
        return int(self.user_starts.size)

    # -- per-user column views -------------------------------------------

    def current(self, field: str) -> np.ndarray:
        """One value per user: ``field`` of the *current* (most recent)
        period row — optional fields read NaN where absent."""
        cached = self._current_cache.get(field)
        if cached is None:
            starts, counts = self._index()
            cached = self._rows[field][starts + counts - 1]
            self._current_cache[field] = cached
        return cached

    @property
    def user_ids(self) -> np.ndarray:
        """Per-user ids, decoded to ``str``."""
        return self.current("user_id").astype(str)

    def source_mask(self, source: str) -> np.ndarray:
        return self.current("source") == source.encode("utf-8")

    @property
    def capacity_down_mbps(self) -> np.ndarray:
        return self.current("capacity_mbps")

    @property
    def latency_ms(self) -> np.ndarray:
        return self.current("latency_ms")

    @property
    def loss_fraction(self) -> np.ndarray:
        return self.current("loss_fraction")

    @property
    def price_of_access_usd(self) -> np.ndarray:
        """Per-user price of access; NaN where the market had none."""
        return self.current("price_of_access_usd")

    @property
    def upgrade_cost_usd_per_mbps(self) -> np.ndarray:
        return self.current("upgrade_cost_usd_per_mbps")

    @property
    def gdp_per_capita_usd(self) -> np.ndarray:
        return self.current("gdp_per_capita_usd")

    def demand(self, metric: str = "peak", include_bt: bool = False) -> np.ndarray:
        """Vectorized twin of :meth:`UserRecord.demand`."""
        if metric not in ("peak", "mean"):
            raise DatasetError(f"unknown demand metric {metric!r}")
        field = f"{metric}_mbps" if include_bt else f"{metric}_no_bt_mbps"
        return self.current(field)

    @property
    def peak_utilization(self) -> np.ndarray:
        """Vectorized twin of :meth:`UserRecord.peak_utilization`."""
        return np.minimum(
            1.0, self.current("peak_no_bt_mbps") / self.capacity_down_mbps
        )

    # -- selection --------------------------------------------------------

    def select_users(self, mask: np.ndarray) -> "UserColumns":
        """A new dataset of the users where ``mask`` is True (one entry
        per user), keeping each kept user's rows whole and in order."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_users,):
            raise DatasetError(
                f"user mask has shape {mask.shape}, expected ({self.n_users},)"
            )
        return UserColumns(self._rows[np.repeat(mask, self.user_counts)])

    # -- object views -----------------------------------------------------

    def iter_records(self) -> Iterator[UserRecord]:
        """Stream one :class:`UserRecord` at a time (O(1 user) memory)."""
        starts, counts = self._index()
        for start, count in zip(starts, counts):
            yield _record_from_rows(self._rows[start : start + count])

    def to_records(self) -> list[UserRecord]:
        return list(self.iter_records())
