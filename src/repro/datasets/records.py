"""Analysis-ready record types.

A :class:`UserRecord` is what the paper's cleaned dataset holds for one
vantage point: measured connection characteristics (from NDT), usage
summaries (from byte counters), the market covariates of the user's
country, and the per-period history needed for the upgrade analyses.
Ground-truth fields (latent need, budget) are deliberately absent — the
analyses must work from measurements alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.upgrades import NetworkId, ServicePeriod
from ..exceptions import DatasetError

__all__ = ["PeriodObservation", "UserRecord", "hourly_profile", "period_year"]

#: Day 0 of every observation window is January 1st of this year.
EPOCH_YEAR = 2011
_DAYS_PER_YEAR = 365.0


def period_year(period: ServicePeriod) -> int:
    """Calendar year a service period belongs to (by its start day)."""
    return EPOCH_YEAR + int(period.start_day // _DAYS_PER_YEAR)


def hourly_profile(
    rates_mbps: Sequence[float] | np.ndarray,
    hours: Sequence[float] | np.ndarray,
    min_samples_per_hour: int = 1,
) -> tuple[float, ...] | None:
    """Mean rate per local hour-of-day over collected samples.

    Returns a 24-tuple (NaN for hours with fewer than
    ``min_samples_per_hour`` samples — a peak-hour-biased collector like
    Dasu genuinely has sparse overnight coverage), or ``None`` when fewer
    than half the hours are covered at all.
    """
    rates = np.asarray(rates_mbps, dtype=float)
    hrs = np.asarray(hours, dtype=float)
    if rates.shape != hrs.shape:
        raise DatasetError("rates and hours must align")
    if rates.size == 0:
        return None
    buckets = np.floor(hrs).astype(int) % 24
    profile = np.full(24, np.nan)
    for hour in range(24):
        mask = buckets == hour
        if int(mask.sum()) >= min_samples_per_hour:
            profile[hour] = float(rates[mask].mean())
    if int(np.sum(~np.isnan(profile))) < 12:
        return None
    return tuple(float(v) for v in profile)


@dataclass(frozen=True)
class PeriodObservation:
    """One service period plus the measurements taken during it."""

    period: ServicePeriod
    latency_ms: float
    loss_fraction: float
    capacity_up_mbps: float
    n_ndt_tests: int
    n_usage_samples: int
    #: Mean rate per local hour (24 values, NaN where coverage is thin),
    #: or None when the period's hour coverage was too sparse.
    hourly_mean_mbps: tuple[float, ...] | None = None
    #: Uplink demand summaries (all traffic), when the collector
    #: recorded the sent direction.
    mean_up_mbps: float | None = None
    peak_up_mbps: float | None = None

    def __post_init__(self) -> None:
        if (
            self.hourly_mean_mbps is not None
            and len(self.hourly_mean_mbps) != 24
        ):
            raise DatasetError("hourly profile must have 24 entries")
        if self.latency_ms <= 0:
            raise DatasetError("period latency must be positive")
        if not 0.0 <= self.loss_fraction <= 1.0:
            raise DatasetError("period loss must be in [0, 1]")

    @property
    def year(self) -> int:
        return period_year(self.period)


@dataclass(frozen=True)
class UserRecord:
    """One vantage point's cleaned record.

    ``capacity_down_mbps``, ``latency_ms`` and ``loss_fraction`` describe
    the user's *current* (most recent) connection, which is what the
    cross-sectional analyses use; ``observations`` carries the full
    history for the longitudinal and upgrade analyses.
    """

    user_id: str
    source: str  # "dasu" or "fcc"
    country: str
    region: str
    development: str
    vantage: str  # "direct", "upnp", or "gateway"
    technology: str
    bt_user: bool
    observations: tuple[PeriodObservation, ...]
    price_of_access_usd: float | None
    upgrade_cost_usd_per_mbps: float | None
    gdp_per_capita_usd: float
    #: Monthly traffic limit of the user's current plan, if any (GB).
    plan_data_cap_gb: float | None = None
    web_latency_ms: float | None = None
    ndt_2014_latency_ms: float | None = None
    extras: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.source not in ("dasu", "fcc"):
            raise DatasetError(f"unknown source {self.source!r}")
        if not self.observations:
            raise DatasetError(f"{self.user_id}: record has no observations")
        days = [o.period.start_day for o in self.observations]
        if days != sorted(days):
            raise DatasetError(f"{self.user_id}: observations out of order")

    # -- current-connection accessors (most recent period) ---------------

    @property
    def current(self) -> PeriodObservation:
        return self.observations[-1]

    @property
    def capacity_down_mbps(self) -> float:
        return self.current.period.capacity_mbps

    @property
    def latency_ms(self) -> float:
        return self.current.latency_ms

    @property
    def loss_fraction(self) -> float:
        return self.current.loss_fraction

    @property
    def network(self) -> NetworkId:
        return self.current.period.network

    @property
    def mean_mbps(self) -> float:
        return self.current.period.mean_mbps

    @property
    def peak_mbps(self) -> float:
        return self.current.period.peak_mbps

    @property
    def mean_no_bt_mbps(self) -> float:
        return self.current.period.mean_no_bt_mbps

    @property
    def peak_no_bt_mbps(self) -> float:
        return self.current.period.peak_no_bt_mbps

    @property
    def mean_up_mbps(self) -> float | None:
        return self.current.mean_up_mbps

    @property
    def peak_up_mbps(self) -> float | None:
        return self.current.peak_up_mbps

    def demand(self, metric: str = "peak", include_bt: bool = False) -> float:
        """A demand statistic of the current period by name."""
        if metric == "peak":
            return self.peak_mbps if include_bt else self.peak_no_bt_mbps
        if metric == "mean":
            return self.mean_mbps if include_bt else self.mean_no_bt_mbps
        raise DatasetError(f"unknown demand metric {metric!r}")

    @property
    def peak_utilization(self) -> float:
        """95th-percentile link utilization, clipped to 1.

        Computed without BitTorrent-active intervals: BitTorrent
        saturates any link by design, so including it would flatten the
        cross-market utilization comparisons of Figs. 7-8.
        """
        return min(1.0, self.peak_no_bt_mbps / self.capacity_down_mbps)

    # -- history accessors ------------------------------------------------

    @property
    def periods(self) -> tuple[ServicePeriod, ...]:
        return tuple(o.period for o in self.observations)

    def observation_in_year(self, year: int) -> PeriodObservation | None:
        """The user's observation for a calendar year, if any."""
        for obs in self.observations:
            if obs.year == year:
                return obs
        return None

    @property
    def switched_service(self) -> bool:
        """Whether the user was seen on more than one network."""
        networks = {o.period.network for o in self.observations}
        return len(networks) > 1
