"""World configuration and containers.

A :class:`WorldConfig` fully determines a synthetic world (markets,
populations, measurements) through a single seed. The mechanism switches
(``price_selection_enabled``, ``quality_suppression_enabled``,
``demand_growth_enabled``) exist for the ablation benchmarks: disabling a
causal mechanism must make the corresponding natural experiment collapse
to chance, which validates that the analysis pipeline does not
manufacture effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..behavior.population import LatentUser
from ..exceptions import DatasetError
from ..faults.config import FaultConfig
from ..market.countries import CountryProfile
from ..market.survey import PlanSurvey
from ..obs.ledger import RunLedger
from .records import UserRecord
from .sanitize import SanitizationReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .columns import UserColumns

__all__ = ["DasuDataset", "FccDataset", "World", "WorldConfig"]


@dataclass(frozen=True)
class WorldConfig:
    """All the knobs of a synthetic world."""

    seed: int = 20141105  # the paper's presentation date
    n_dasu_users: int = 8000
    n_fcc_users: int = 1500
    years: tuple[int, ...] = (2011, 2012, 2013)
    days_per_year: float = 2.0
    sample_interval_s: float = 30.0
    include_synthetic_countries: bool = True
    ndt_tests_per_period: int = 10
    web_probe_fraction: float = 0.6
    max_candidate_draws: int = 60
    #: Share of households whose address limits the plans actually
    #: available to them (rural DSL, unserved streets). Constrained
    #: households sit on slow tiers regardless of need — the reason low
    #: tiers run hot even in cheap markets (Fig. 8a).
    address_constraint_rate: float = 0.12
    #: Share of users whose raw collected samples are retained as
    #: auditable traces (see :mod:`repro.datasets.traces`).
    trace_user_fraction: float = 0.0
    # Mechanism switches (for ablation studies).
    price_selection_enabled: bool = True
    quality_suppression_enabled: bool = True
    demand_growth_enabled: bool = True
    #: Measurement-substrate fault injection (see :mod:`repro.faults`).
    #: ``None`` — the default — means a pristine substrate and output
    #: byte-identical to worlds built before fault injection existed.
    faults: FaultConfig | None = None
    #: Run the :mod:`repro.datasets.sanitize` cleaning stage while
    #: building (sample-level repair inside collection, record-level
    #: filtering afterwards) and attach its report to the world.
    sanitize: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.faults, dict):
            # Allow configs deserialized from JSON payloads.
            object.__setattr__(self, "faults", FaultConfig(**self.faults))
        if self.faults is not None and not isinstance(self.faults, FaultConfig):
            raise DatasetError("faults must be a FaultConfig or None")
        if self.n_dasu_users < 0 or self.n_fcc_users < 0:
            raise DatasetError("user counts cannot be negative")
        if not self.years or tuple(sorted(self.years)) != tuple(self.years):
            raise DatasetError("years must be a non-empty ascending tuple")
        if self.days_per_year <= 0 or self.sample_interval_s <= 0:
            raise DatasetError("observation window must be positive")
        if self.ndt_tests_per_period < 1:
            raise DatasetError("need at least one NDT test per period")
        if not 0.0 <= self.web_probe_fraction <= 1.0:
            raise DatasetError("web probe fraction must be a fraction")
        if not 0.0 <= self.address_constraint_rate <= 1.0:
            raise DatasetError("address constraint rate must be a fraction")
        if not 0.0 <= self.trace_user_fraction <= 1.0:
            raise DatasetError("trace fraction must be a fraction")


class _ColumnarDataset:
    """A dataset held either as records or as columns, deriving the
    other representation lazily.

    The builder and cache hand over :class:`~repro.datasets.columns.
    UserColumns`; hand-assembled worlds (tests, synthetic fixtures)
    keep passing record tuples. ``users`` stays the compatibility
    surface — the long tail of analysis callers iterates it unchanged —
    while hot paths read ``columns`` directly.
    """

    __slots__ = ("_users", "_columns")

    def __init__(
        self,
        users: tuple[UserRecord, ...] | None = None,
        *,
        columns: "UserColumns | None" = None,
    ) -> None:
        if (users is None) == (columns is None):
            raise DatasetError(
                "pass exactly one of users= or columns= to a dataset"
            )
        self._users = tuple(users) if users is not None else None
        self._columns = columns

    @property
    def users(self) -> tuple[UserRecord, ...]:
        if self._users is None:
            self._users = tuple(self._columns.iter_records())
        return self._users

    @property
    def columns(self) -> "UserColumns":
        if self._columns is None:
            from .columns import UserColumns

            self._columns = UserColumns.from_records(self._users)
        return self._columns

    @property
    def n_users(self) -> int:
        if self._columns is not None:
            return self._columns.n_users
        return len(self._users)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _ColumnarDataset):
            return NotImplemented
        return type(self) is type(other) and self.users == other.users

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_users={self.n_users})"


class DasuDataset(_ColumnarDataset):
    """The simulated Dasu dataset: global, end-host collected."""

    __slots__ = ()

    def by_country(self, country: str) -> tuple[UserRecord, ...]:
        return tuple(u for u in self.users if u.country == country)

    @property
    def countries(self) -> tuple[str, ...]:
        return tuple(sorted({u.country for u in self.users}))


class FccDataset(_ColumnarDataset):
    """The simulated FCC/SamKnows dataset: US-only, gateway collected."""

    __slots__ = ()


@dataclass(frozen=True)
class World:
    """A fully built synthetic world."""

    config: WorldConfig
    profiles: Mapping[str, CountryProfile]
    survey: PlanSurvey
    dasu: DasuDataset
    fcc: FccDataset
    ground_truth: Mapping[str, LatentUser] = field(repr=False)
    #: Raw collected traces for the sampled subset of users (empty unless
    #: ``config.trace_user_fraction`` > 0).
    traces: Mapping[str, tuple] = field(default_factory=dict, repr=False)
    #: What the sanitization stage did (``None`` unless
    #: ``config.sanitize`` was set when the world was built).
    sanitization: SanitizationReport | None = field(
        default=None, repr=False, compare=False
    )
    #: The build-stage run ledger (counters + spans, see
    #: :mod:`repro.obs`); attached by :func:`~repro.datasets.builder.
    #: build_world`, ``None`` for worlds assembled by hand or loaded
    #: from pre-ledger cache entries.
    ledger: RunLedger | None = field(default=None, repr=False, compare=False)

    @property
    def all_users(self) -> tuple[UserRecord, ...]:
        return self.dasu.users + self.fcc.users

    @property
    def all_columns(self) -> "UserColumns":
        """Both datasets as one columnar block, dasu rows first —
        mirroring :attr:`all_users` and the ``users.csv`` row order."""
        from .columns import UserColumns

        return UserColumns.concat([self.dasu.columns, self.fcc.columns])
