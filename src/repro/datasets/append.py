"""Incremental world ingest: fold new households into a cached world.

A cold :func:`~repro.datasets.builder.build_world` pays for every
household in the configuration; a measurement panel that grows by a few
hundred vantage points per ingest batch should not. Because every
household owns an independent random stream derived from
``SeedSequence([seed, source_stream, country_index, user_index])``, the
households of a *larger* configuration are a strict superset of the
smaller one's — existing users' draws never depend on how many users
come after them. :func:`append_world` exploits this: it loads the base
world from the :class:`~repro.datasets.cache.WorldCache`, simulates only
the household index ranges the delta adds (through the builder's own
chunk machinery, so the new rows are jobs-invariant and byte-identical
to a cold build's), splices them into each country's block, merges the
sanitization accounting via its additive form, and publishes the
extended world as a normal cache entry.

The result is **byte-identical** to ``build_world(extended_config)`` in
every persisted artifact except ``trace.jsonl``: a cold build's ledger
records per-chunk spans whose boundaries depend on the full population,
which a base + delta replay cannot reproduce, so appended entries carry
no trace (the cache already tolerates its absence).

One wrinkle is the country allocation.
:func:`~repro.datasets.builder._allocate_counts` is a largest-remainder
apportionment, which is not monotone in the total (the Alabama paradox):
growing the population can *shrink* one country's share. When that
happens the delta is not a superset and :func:`append_world` falls back
to a full build of the extended configuration — correctness first, the
shortcut only when it is exact.

Append operations themselves are recorded as content-addressed delta
records in a :class:`DeltaLog` beside the base entry, so a restarted
service replays the chain deterministically and lands on the same
extended configuration.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.executor import resolve_jobs, run_sharded
from ..exceptions import DatasetError
from ..obs.ledger import RunLedger
from .builder import (
    _DASU_STREAM,
    _DEFAULT_CHUNK_SIZE,
    _FCC_STREAM,
    _allocate_counts,
    _BuildContext,
    _ChunkSpec,
    _worker_chunk,
    _worker_init,
)
from .cache import WorldCache, build_or_load_world, cache_key, payload_key
from .columns import UserColumns
from .sanitize import SanitizationReport, sanitize_columns
from .world import DasuDataset, FccDataset, World, WorldConfig

__all__ = ["AppendDelta", "AppendResult", "DeltaLog", "append_world"]

#: Bump when the delta-record schema changes (invalidates stored logs).
APPEND_FORMAT_VERSION = 1

_DELTA_DIR_PREFIX = ".deltas-"


@dataclass(frozen=True)
class AppendDelta:
    """One ingest batch: additional households per data source.

    Semantically this is a new measurement period folding new vantage
    points into the panel. Extending the *time* axis is deliberately not
    expressible: entry/exit years are drawn inside each household's
    stream, so changing ``years`` perturbs every existing household and
    can never be a pure append.
    """

    n_dasu_users: int = 0
    n_fcc_users: int = 0

    def __post_init__(self) -> None:
        for name in ("n_dasu_users", "n_fcc_users"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise DatasetError(f"append delta {name} must be an int")
            if value < 0:
                raise DatasetError(
                    f"append delta {name} must be non-negative, got {value}"
                )

    @property
    def is_empty(self) -> bool:
        return self.n_dasu_users == 0 and self.n_fcc_users == 0

    def payload(self) -> dict:
        return {
            "n_dasu_users": self.n_dasu_users,
            "n_fcc_users": self.n_fcc_users,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AppendDelta":
        return cls(
            n_dasu_users=int(payload.get("n_dasu_users", 0)),
            n_fcc_users=int(payload.get("n_fcc_users", 0)),
        )

    def apply(self, config: WorldConfig) -> WorldConfig:
        """The extended configuration this delta produces from ``config``."""
        return dataclasses.replace(
            config,
            n_dasu_users=config.n_dasu_users + self.n_dasu_users,
            n_fcc_users=config.n_fcc_users + self.n_fcc_users,
        )


@dataclass(frozen=True)
class AppendResult:
    """What :func:`append_world` did and produced."""

    world: World
    config: WorldConfig
    #: The extended entry already existed; nothing was simulated.
    from_cache: bool = False
    #: The delta was not a pure superset (allocation shrank a country)
    #: and the extended world came from a full build instead.
    rebuilt: bool = False


class DeltaLog:
    """Content-addressed append records beside a base cache entry.

    The log for a chain rooted at ``base_config`` lives in
    ``<cache root>/.deltas-<base key>/`` — a hidden name that can never
    collide with an entry (keys are 64 hex characters) nor be mistaken
    for staging residue. Each record is one JSON file named by the hash
    of ``(base key, parent key, delta payload)``, linking parent entry
    to extended entry, and is published with the same temp-file +
    ``os.replace`` discipline as every other artifact: a reader sees a
    complete record or none.

    Records form a chain followed from the base key. Concurrent appends
    of *different* deltas onto the same parent fork the chain; both
    extended worlds exist in the cache (they have distinct keys), but
    :meth:`replay` deterministically follows the lexicographically
    smallest record at each fork, so every process that replays the log
    lands on the same tip. Re-recording an identical append is a no-op
    by construction — same content, same filename.
    """

    def __init__(
        self, base_config: WorldConfig, cache: WorldCache | None = None
    ) -> None:
        self.cache = cache if cache is not None else WorldCache()
        self.base_config = base_config
        self.base_key = cache_key(base_config)
        self.root = self.cache.root / f"{_DELTA_DIR_PREFIX}{self.base_key}"

    @staticmethod
    def record_key(base_key: str, parent_key: str, delta: AppendDelta) -> str:
        return payload_key(
            {
                "__append_format__": APPEND_FORMAT_VERSION,
                "base": base_key,
                "parent": parent_key,
                "delta": delta.payload(),
            }
        )

    def record(self, parent_config: WorldConfig, delta: AppendDelta) -> Path:
        """Persist one append atomically; returns the record path."""
        parent_key = cache_key(parent_config)
        extended_key = cache_key(delta.apply(parent_config))
        key = self.record_key(self.base_key, parent_key, delta)
        payload = {
            "append_format": APPEND_FORMAT_VERSION,
            "base_key": self.base_key,
            "parent_key": parent_key,
            "extended_key": extended_key,
            "delta": delta.payload(),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        target = self.root / f"{key}.json"
        fd, tmp = tempfile.mkstemp(
            prefix=".record-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload, indent=2, sort_keys=True))
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return target

    def _records(self) -> list[dict]:
        """Every readable, current-format record (unreadable ones skip)."""
        try:
            paths = sorted(self.root.glob("*.json"))
        except OSError:
            return []
        records = []
        for path in paths:
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if payload.get("append_format") != APPEND_FORMAT_VERSION:
                continue
            if payload.get("base_key") != self.base_key:
                continue
            records.append(payload)
        return records

    def replay(self) -> list[AppendDelta]:
        """The chain of deltas from the base, in application order.

        Follows ``parent_key`` links starting at the base key; at a fork
        (concurrent appends of different deltas onto one parent) the
        record with the smallest content key wins, deterministically.
        """
        by_parent: dict[str, list[tuple[str, dict]]] = {}
        for record in self._records():
            key = self.record_key(
                self.base_key,
                str(record.get("parent_key")),
                AppendDelta.from_payload(dict(record.get("delta", {}))),
            )
            by_parent.setdefault(str(record.get("parent_key")), []).append(
                (key, record)
            )
        chain: list[AppendDelta] = []
        cursor = self.base_key
        seen = {cursor}
        while cursor in by_parent:
            _, record = min(by_parent[cursor], key=lambda item: item[0])
            chain.append(AppendDelta.from_payload(dict(record["delta"])))
            cursor = str(record["extended_key"])
            if cursor in seen:  # defensive: a corrupt log must not loop
                break
            seen.add(cursor)
        return chain

    def tip_config(self) -> WorldConfig:
        """The extended configuration after replaying the whole chain."""
        config = self.base_config
        for delta in self.replay():
            config = delta.apply(config)
        return config


def _dasu_counts(
    context: _BuildContext, n_dasu_users: int
) -> np.ndarray:
    weights = np.array(
        [p.dasu_user_weight for p in context.profiles], dtype=float
    )
    return _allocate_counts(weights, n_dasu_users)


def _delta_chunks(
    context: _BuildContext,
    base_config: WorldConfig,
    extended: WorldConfig,
    chunk_size: int,
) -> list[_ChunkSpec] | None:
    """Chunk specs covering exactly the added household index ranges.

    Returns ``None`` when the extended allocation is not a superset of
    the base's (largest-remainder apportionment is not monotone), in
    which case the caller must rebuild from scratch. Chunk boundaries
    differ from a cold build's — harmless, the build is invariant to
    chunking because every household owns its own seed stream.
    """
    old_counts = _dasu_counts(context, base_config.n_dasu_users)
    new_counts = _dasu_counts(context, extended.n_dasu_users)
    if np.any(new_counts < old_counts):
        return None
    specs: list[_ChunkSpec] = []
    for country_index, profile in enumerate(context.profiles):
        old, new = int(old_counts[country_index]), int(new_counts[country_index])
        for start in range(old, new, chunk_size):
            specs.append(
                _ChunkSpec(
                    source="dasu",
                    country=profile.name,
                    country_index=country_index,
                    stream=_DASU_STREAM,
                    start=start,
                    count=min(chunk_size, new - start),
                )
            )
    if extended.n_fcc_users > base_config.n_fcc_users:
        us_index = next(
            (i for i, p in enumerate(context.profiles) if p.name == "US"),
            None,
        )
        if us_index is None:
            raise DatasetError("the FCC panel requires a US market")
        for start in range(
            base_config.n_fcc_users, extended.n_fcc_users, chunk_size
        ):
            specs.append(
                _ChunkSpec(
                    source="fcc",
                    country="US",
                    country_index=us_index,
                    stream=_FCC_STREAM,
                    start=start,
                    count=min(
                        chunk_size, extended.n_fcc_users - start
                    ),
                )
            )
    return specs


def _merge_columns(
    context: _BuildContext,
    base: World,
    new_parts: dict[tuple[str, str], UserColumns],
) -> tuple[UserColumns, UserColumns]:
    """Splice new per-country blocks into the base world's row order.

    A cold build lays dasu rows out by country in profile enumeration
    order, users ascending within a country, then all fcc rows. Base
    entries loaded through the CSV fallback are instead sorted by
    ``user_id`` (alphabetical countries) — selecting each country's
    block explicitly and concatenating in enumeration order yields the
    canonical build order from either representation, because within a
    country the zero-padded index makes both orders agree.
    """
    base_columns = base.all_columns
    base_dasu = base_columns.select_users(base_columns.source_mask("dasu"))
    base_fcc = base_columns.select_users(base_columns.source_mask("fcc"))
    dasu_parts: list[UserColumns] = []
    for profile in context.profiles:
        name = profile.name.encode("utf-8")
        mask = base_dasu.current("country") == name
        if mask.any():
            dasu_parts.append(base_dasu.select_users(mask))
        part = new_parts.get(("dasu", profile.name))
        if part is not None and part.n_rows:
            dasu_parts.append(part)
    fcc_parts: list[UserColumns] = [base_fcc]
    part = new_parts.get(("fcc", "US"))
    if part is not None and part.n_rows:
        fcc_parts.append(part)
    return UserColumns.concat(dasu_parts), UserColumns.concat(fcc_parts)


def append_world(
    config: WorldConfig,
    delta: AppendDelta,
    *,
    jobs: int | None = 1,
    cache: WorldCache | None = None,
    use_cache: bool = True,
    log: DeltaLog | None = None,
) -> AppendResult:
    """Fold ``delta``'s new households into ``config``'s cached world.

    Simulates only the added household index ranges and publishes the
    extended world as a normal cache entry whose persisted datasets are
    byte-identical to a cold ``build_world`` of the extended
    configuration (for any ``jobs``), except that appended entries carry
    no ``trace.jsonl``. Passing a :class:`DeltaLog` additionally records
    the append so the chain replays after a restart.

    The base world is loaded from the cache, or built (and cached) on a
    miss. An empty delta returns the base world unchanged.
    """
    if config.trace_user_fraction != 0.0:
        raise DatasetError(
            "cannot append to a trace-bearing configuration; raw traces "
            "are never cached, so there is no base entry to extend"
        )
    store = cache if cache is not None else WorldCache()
    n_jobs = resolve_jobs(jobs)
    if delta.is_empty:
        world, from_cache = build_or_load_world(
            config, jobs=n_jobs, cache=store, use_cache=use_cache,
            ground_truth=False,
        )
        return AppendResult(world=world, config=config, from_cache=from_cache)
    extended = delta.apply(config)

    def _finish(world: World, **flags) -> AppendResult:
        if log is not None:
            log.record(config, delta)
        return AppendResult(world=world, config=extended, **flags)

    if use_cache:
        cached = store.load(extended)
        if cached is not None:
            return _finish(cached, from_cache=True)

    base_world, _ = build_or_load_world(
        config, jobs=n_jobs, cache=store, use_cache=use_cache,
        ground_truth=False,
    )
    context = _BuildContext(extended, ground_truth=False)
    specs = _delta_chunks(context, config, extended, _DEFAULT_CHUNK_SIZE)
    if specs is None:
        # Alabama paradox: some country's allocation shrank, so the
        # extension is not a pure append. Build the extended world
        # from scratch — the result contract holds either way.
        world, from_cache = build_or_load_world(
            extended, jobs=n_jobs, cache=store, use_cache=use_cache,
            ground_truth=False,
        )
        return _finish(world, from_cache=from_cache, rebuilt=True)

    chunk_results = run_sharded(
        _worker_chunk,
        specs,
        jobs=n_jobs,
        initializer=_worker_init,
        initargs=(extended, False),
        ledger=RunLedger(),
    )

    delta_report = SanitizationReport() if extended.sanitize else None
    grouped: dict[tuple[str, str], list[np.ndarray]] = {}
    for spec, ((rows, _latents, _traces), chunk_report) in zip(
        specs, chunk_results
    ):
        if delta_report is not None and chunk_report is not None:
            delta_report.merge(chunk_report)
        grouped.setdefault((spec.source, spec.country), []).append(rows)

    new_parts: dict[tuple[str, str], UserColumns] = {}
    for group, parts in grouped.items():
        columns = UserColumns.concat(parts)
        if delta_report is not None:
            # Record-level rules are per-user independent, so cleaning
            # each new block separately and adding the counters equals
            # the cold build's single pass over the full dataset.
            columns, delta_report = sanitize_columns(
                columns,
                dasu_interval_s=extended.sample_interval_s,
                report=delta_report,
            )
        new_parts[group] = columns

    report = None
    if extended.sanitize:
        report = SanitizationReport()
        if base_world.sanitization is not None:
            report.merge(base_world.sanitization)
        report.merge(delta_report)

    dasu_columns, fcc_columns = _merge_columns(context, base_world, new_parts)
    world = World(
        config=extended,
        profiles=context.profile_map,
        survey=context.survey,
        dasu=DasuDataset(columns=dasu_columns),
        fcc=FccDataset(columns=fcc_columns),
        ground_truth={},
        traces={},
        sanitization=report,
        ledger=None,
    )
    if use_cache:
        try:
            store.store(world)
        except OSError:
            pass
    return _finish(world)
