"""Raw usage traces: the per-sample data behind the summary records.

Real studies publish cleaned summaries but keep raw counter traces for a
subset of vantage points. Setting ``WorldConfig.trace_user_fraction``
above zero makes the builder retain, for a random subset of users, the
exact collected samples (rates, BitTorrent flags, local hours, uplink
rates) that produced each period's summaries — so any published summary
can be re-derived and audited from its raw trace.

Traces persist to a single ``.npz`` archive via :func:`write_traces_npz`
/ :func:`read_traces_npz`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..core.metrics import DemandSummary, demand_summary
from ..exceptions import DatasetError

__all__ = ["UsageTrace", "read_traces_npz", "write_traces_npz"]


@dataclass(frozen=True)
class UsageTrace:
    """The collected samples of one user's observed year."""

    user_id: str
    year: int
    interval_s: float
    rates_mbps: np.ndarray
    bt_active: np.ndarray
    hours: np.ndarray
    up_rates_mbps: np.ndarray | None = None

    def __post_init__(self) -> None:
        if not (
            self.rates_mbps.shape == self.bt_active.shape == self.hours.shape
        ):
            raise DatasetError("trace arrays must align")
        if (
            self.up_rates_mbps is not None
            and self.up_rates_mbps.shape != self.rates_mbps.shape
        ):
            raise DatasetError("uplink trace must align")

    @property
    def n_samples(self) -> int:
        return int(self.rates_mbps.size)

    def summary(self, include_bt: bool = True) -> DemandSummary:
        """Re-derive the demand summary from the raw samples."""
        if include_bt:
            return demand_summary(self.rates_mbps)
        rates = self.rates_mbps[~self.bt_active]
        if rates.size == 0:
            return demand_summary(self.rates_mbps)
        return demand_summary(rates)


def write_traces_npz(
    traces: Mapping[str, Sequence[UsageTrace]], path: str | Path
) -> int:
    """Persist traces to one compressed archive; returns trace count."""
    arrays: dict[str, np.ndarray] = {}
    count = 0
    for user_id, user_traces in traces.items():
        for trace in user_traces:
            key = f"{user_id}|{trace.year}"
            if f"{key}|rates" in arrays:
                raise DatasetError(f"duplicate trace for {key}")
            arrays[f"{key}|rates"] = trace.rates_mbps
            arrays[f"{key}|bt"] = trace.bt_active
            arrays[f"{key}|hours"] = trace.hours
            arrays[f"{key}|meta"] = np.array([trace.interval_s])
            if trace.up_rates_mbps is not None:
                arrays[f"{key}|up"] = trace.up_rates_mbps
            count += 1
    np.savez_compressed(Path(path), **arrays)
    return count


def read_traces_npz(path: str | Path) -> dict[str, list[UsageTrace]]:
    """Load traces written by :func:`write_traces_npz`."""
    path = Path(path)
    with np.load(path) as archive:
        keys = sorted(k for k in archive.files if k.endswith("|rates"))
        out: dict[str, list[UsageTrace]] = {}
        for rates_key in keys:
            prefix = rates_key[: -len("|rates")]
            try:
                user_id, year_text = prefix.split("|")
            except ValueError:
                raise DatasetError(f"{path}: malformed trace key {prefix!r}")
            up_key = f"{prefix}|up"
            trace = UsageTrace(
                user_id=user_id,
                year=int(year_text),
                interval_s=float(archive[f"{prefix}|meta"][0]),
                rates_mbps=archive[rates_key],
                bt_active=archive[f"{prefix}|bt"].astype(bool),
                hours=archive[f"{prefix}|hours"],
                up_rates_mbps=(
                    archive[up_key] if up_key in archive.files else None
                ),
            )
            out.setdefault(user_id, []).append(trace)
    for user_traces in out.values():
        user_traces.sort(key=lambda t: t.year)
    return out
