"""On-disk world cache keyed by configuration and code version.

Building a paper-scale world is by far the most expensive step of the
pipeline, and every benchmark session and CLI invocation used to repeat
it from scratch. Because a :class:`WorldConfig` fully determines a world
(the builder is bit-reproducible, see :mod:`repro.datasets.builder`),
the persisted datasets can be reused safely: the cache key is a SHA-256
over every configuration field **plus the package version**, so any
change to either the knobs or the generator code invalidates the entry.

Each entry is a directory ``<root>/<key>/`` holding exactly the files
the CLI's ``build`` command writes (``users.csv``, ``survey.csv``,
``config.json``, plus the columnar ``users.npy`` shard and its
``users.npy.json`` manifest), written atomically via a temp directory +
rename. Corrupt or unreadable entries are treated as misses — the
caller falls back to a clean build, never crashes.

Hits load through the memory-mapped ``users.npy`` when its manifest
validates (row count, schema version, and the byte size of the CSV it
was written beside); otherwise they fall back to parsing ``users.csv``,
so pre-columnar or npy-damaged entries still hit.

Cached worlds carry **records only**: latent ground-truth users and raw
traces are not persisted, so :func:`WorldCache.load` returns a
:class:`World` with empty ``ground_truth``/``traces`` mappings, and
configurations with ``trace_user_fraction > 0`` bypass the cache
entirely. No analysis reads ground truth, so cached worlds are
indistinguishable for every figure, table, and report.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from .._version import __version__
from ..core.staging import (
    clear_heartbeat,
    sweep_stale_staging,
    touch_heartbeat,
)
from ..exceptions import ReproError
from ..market.countries import build_profiles
from ..market.survey import PlanSurvey
from ..obs.ledger import RunLedger
from .builder import build_world
from .columns import COLUMNS_FORMAT_VERSION, UserColumns
from .io import (
    config_payload,
    read_config_json,
    read_survey_csv,
    read_users_csv,
    read_users_npy,
    write_config_json,
    write_survey_csv,
    write_users_csv,
    write_users_npy,
)
from .records import UserRecord
from .sanitize import SanitizationReport
from .world import DasuDataset, FccDataset, World, WorldConfig

__all__ = [
    "WorldCache",
    "build_or_load_world",
    "cache_key",
    "default_cache_root",
    "payload_key",
]

#: Bump when the on-disk entry layout changes (invalidates all entries).
CACHE_FORMAT_VERSION = 1

_ENTRY_FILES = ("users.csv", "survey.csv", "config.json")
#: The columnar fast path: the same rows as ``users.csv``, loadable as
#: an mmap, plus a manifest tying it to the CSV it was written beside.
_COLUMNS_FILE = "users.npy"
_COLUMNS_META = "users.npy.json"
#: Present only in entries built with ``config.sanitize`` enabled.
_REPORT_FILE = "sanitization.json"
#: The build-stage run ledger (see :mod:`repro.obs`), serialized as the
#: same JSONL stream ``build --trace`` writes. Entries stored since the
#: ledger existed always carry it (the package-version component of the
#: cache key invalidated older entries); its absence is tolerated for
#: hand-assembled worlds stored without one.
_TRACE_FILE = "trace.jsonl"
#: Staging directories are hidden and can never collide with an entry
#: (cache keys are 64 hex characters); ones untouched longer than this
#: belong to killed stores and are swept.
_STAGING_PREFIX = ".staging-"
_STAGING_MAX_AGE_S = 3600.0


def payload_key(payload: dict) -> str:
    """SHA-256 over the canonical JSON rendering of ``payload``.

    The single content-addressing primitive of the package: world cache
    keys and :mod:`repro.dag` stage keys both hash through here, so
    every key shares one canonicalization (sorted keys, JSON-native
    values only — callers must canonicalize first, see
    :func:`~repro.datasets.io.config_payload`).
    """
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cache_key(config: WorldConfig) -> str:
    """Content hash of every world knob plus the generator version.

    Built over :func:`~repro.datasets.io.config_payload`, which omits
    ``faults``/``sanitize`` when they sit at their defaults — so keys of
    fault-free configurations are unchanged from before fault injection
    existed, and warm caches survive the upgrade.
    """
    payload = config_payload(config)
    payload["__package_version__"] = __version__
    payload["__cache_format__"] = CACHE_FORMAT_VERSION
    # No default= fallback: config_payload canonicalizes to JSON-native
    # types and raises on anything else, so a key can never be built
    # from an unstable str() rendering.
    return payload_key(payload)


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/worlds``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "worlds"


def _world_from_records(
    config: WorldConfig,
    users: list[UserRecord],
    survey: PlanSurvey,
    sanitization: SanitizationReport | None = None,
    ledger: RunLedger | None = None,
) -> World:
    """Reassemble a records-only :class:`World` from persisted datasets."""
    profiles = build_profiles(
        np.random.default_rng([config.seed, 1]),
        include_synthetic=config.include_synthetic_countries,
    )
    return World(
        config=config,
        profiles={p.name: p for p in profiles},
        survey=survey,
        dasu=DasuDataset(
            users=tuple(u for u in users if u.source == "dasu")
        ),
        fcc=FccDataset(users=tuple(u for u in users if u.source == "fcc")),
        ground_truth={},
        traces={},
        sanitization=sanitization,
        ledger=ledger,
    )


def _world_from_columns(
    config: WorldConfig,
    columns: UserColumns,
    survey: PlanSurvey,
    sanitization: SanitizationReport | None = None,
    ledger: RunLedger | None = None,
) -> World:
    """Reassemble a records-only :class:`World` from a columnar shard.

    Rows keep the builder's order (dasu first), so the datasets are
    value-identical to the world that was stored; records materialize
    lazily only for callers that iterate them.
    """
    profiles = build_profiles(
        np.random.default_rng([config.seed, 1]),
        include_synthetic=config.include_synthetic_countries,
    )
    return World(
        config=config,
        profiles={p.name: p for p in profiles},
        survey=survey,
        dasu=DasuDataset(columns=columns.select_users(columns.source_mask("dasu"))),
        fcc=FccDataset(columns=columns.select_users(columns.source_mask("fcc"))),
        ground_truth={},
        traces={},
        sanitization=sanitization,
        ledger=ledger,
    )


class WorldCache:
    """A directory of persisted worlds, one entry per cache key."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    def entry_dir(self, config: WorldConfig) -> Path:
        return self.root / cache_key(config)

    def _cacheable(self, config: WorldConfig) -> bool:
        # Raw traces are not persisted; trace-bearing worlds must always
        # be rebuilt so their traces exist.
        return config.trace_user_fraction == 0.0

    def load(self, config: WorldConfig) -> World | None:
        """The cached world for ``config``, or ``None`` on miss.

        Any unreadable, truncated, or mismatched entry is a miss: the
        caller falls back to a clean build.
        """
        if not self._cacheable(config):
            return None
        entry = self.entry_dir(config)
        try:
            stored = read_config_json(entry / "config.json")
            if stored != config:
                return None
            survey = read_survey_csv(entry / "survey.csv")
            report = None
            if config.sanitize:
                report = SanitizationReport.from_payload(
                    json.loads((entry / _REPORT_FILE).read_text())
                )
            ledger = None
            trace_path = entry / _TRACE_FILE
            if trace_path.exists():
                ledger = RunLedger.from_jsonl(trace_path.read_text())
        except (ReproError, OSError, ValueError, KeyError, TypeError):
            # Unreadable, truncated, or schema-mismatched entry: a miss.
            return None
        columns = self._load_columns(entry)
        if columns is not None:
            return _world_from_columns(config, columns, survey, report, ledger)
        try:
            users = read_users_csv(entry / "users.csv")
        except (ReproError, OSError, ValueError, KeyError, TypeError):
            return None
        return _world_from_records(config, users, survey, report, ledger)

    def _load_columns(self, entry: Path) -> UserColumns | None:
        """The entry's memory-mapped columnar shard, or ``None`` if it
        is absent or fails validation (fall back to the CSV).

        The manifest ties the shard to the CSV it was stored beside:
        schema version, row count, and the CSV's byte size. A shard
        whose CSV sibling changed underneath it (truncation, manual
        edits) is rejected, so npy-vs-csv disagreement can never serve
        stale rows.
        """
        try:
            meta = json.loads((entry / _COLUMNS_META).read_text())
            if meta.get("columns_format") != COLUMNS_FORMAT_VERSION:
                return None
            csv_bytes = (entry / "users.csv").stat().st_size
            if meta.get("users_csv_bytes") != csv_bytes:
                return None
            columns = read_users_npy(entry / _COLUMNS_FILE)
            if columns.n_rows != meta.get("rows"):
                return None
        except (ReproError, OSError, ValueError, KeyError, TypeError):
            return None
        return columns

    def fetch_into(self, config: WorldConfig, out_dir: str | Path) -> bool:
        """Copy a validated entry's raw files into ``out_dir``.

        Returns ``False`` on a miss (including corruption). The copies
        are byte-identical to what a fresh ``build`` would have written.
        """
        if self.load(config) is None:
            return False
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        entry = self.entry_dir(config)
        names = _ENTRY_FILES + ((_REPORT_FILE,) if config.sanitize else ())
        if (entry / _TRACE_FILE).exists():
            names = names + (_TRACE_FILE,)
        for name in (_COLUMNS_FILE, _COLUMNS_META):
            if (entry / name).exists():
                names = names + (name,)
        for name in names:
            shutil.copyfile(entry / name, out / name)
        return True

    def store(self, world: World) -> Path | None:
        """Persist a world atomically; returns the entry path.

        Returns ``None`` (stores nothing) for trace-bearing worlds.

        **Atomicity under interruption.** Every file is written into a
        hidden ``.staging-*`` directory and published in one
        ``os.replace`` — the only step that makes the entry visible.
        A process killed at any earlier point leaves nothing but a
        staging directory whose name can never collide with a cache key
        (keys are 64 hex characters; staging names start with a dot), so
        a concurrent :meth:`load` observes either no entry or a complete
        one, never a partial write. Orphaned staging directories from
        killed stores are swept opportunistically once they are clearly
        abandoned. (The guarantee covers process interruption; a power
        loss may still lose buffered writes — entries are validated on
        load and any damage reads as a miss.)

        Safe under concurrent stores of the same config: the build is
        deterministic, so losing the publish race to another process is
        a benign success — if a valid entry already occupies the path,
        the staging copy is discarded and the existing entry returned.
        Only an *invalid* occupant (stale format, corruption) is
        replaced.
        """
        if not self._cacheable(world.config):
            return None
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_staging()
        staging = Path(
            tempfile.mkdtemp(prefix=_STAGING_PREFIX, dir=self.root)
        )
        try:
            touch_heartbeat(staging)
            columns = world.all_columns
            n_rows = write_users_csv(columns, staging / "users.csv")
            touch_heartbeat(staging)
            write_users_npy(columns, staging / _COLUMNS_FILE)
            (staging / _COLUMNS_META).write_text(
                json.dumps(
                    {
                        "columns_format": COLUMNS_FORMAT_VERSION,
                        "rows": n_rows,
                        "users_csv_bytes": (
                            staging / "users.csv"
                        ).stat().st_size,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
            touch_heartbeat(staging)
            write_survey_csv(world.survey, staging / "survey.csv")
            write_config_json(world.config, staging / "config.json")
            if world.sanitization is not None:
                (staging / _REPORT_FILE).write_text(
                    json.dumps(
                        world.sanitization.to_payload(),
                        indent=2,
                        sort_keys=True,
                    )
                )
            if world.ledger is not None:
                (staging / _TRACE_FILE).write_text(world.ledger.to_jsonl())
            clear_heartbeat(staging)
            entry = self.entry_dir(world.config)
            try:
                os.replace(staging, entry)
            except OSError:
                # The entry path is occupied (concurrent store, or a
                # stale/corrupt leftover). Validate before touching it.
                if self.load(world.config) is not None:
                    # Lost the race to an equivalent valid entry.
                    shutil.rmtree(staging, ignore_errors=True)
                    return entry
                shutil.rmtree(entry, ignore_errors=True)
                try:
                    os.replace(staging, entry)
                except OSError:
                    # A concurrent storer re-published between the
                    # rmtree and the replace. Deterministic builds make
                    # a valid occupant equivalent to ours; anything
                    # else is a real failure.
                    if self.load(world.config) is None:
                        raise
                    shutil.rmtree(staging, ignore_errors=True)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return entry

    def _sweep_stale_staging(self) -> None:
        """Drop abandoned ``.staging-*`` directories (killed stores).

        Delegates to :func:`repro.core.staging.sweep_stale_staging`,
        which ages a candidate by the newest mtime anywhere inside it
        (heartbeat file included) and tolerates clock steps in either
        direction — an in-flight concurrent store is never disturbed.
        """
        sweep_stale_staging(
            self.root, prefix=_STAGING_PREFIX, max_age_s=_STAGING_MAX_AGE_S
        )

    def invalidate(self, config: WorldConfig) -> bool:
        """Drop the entry for ``config``; returns whether one existed."""
        entry = self.entry_dir(config)
        if not entry.exists():
            return False
        shutil.rmtree(entry)
        return True


def build_or_load_world(
    config: WorldConfig,
    *,
    jobs: int | None = 1,
    cache: WorldCache | None = None,
    use_cache: bool = True,
    ground_truth: bool = True,
) -> tuple[World, bool]:
    """Load ``config``'s world from cache, or build and persist it.

    Returns ``(world, from_cache)``. Cache write failures are
    non-fatal — the freshly built world is returned regardless.
    ``ground_truth=False`` skips retaining latent users on a build
    (cached worlds never carry them anyway).
    """
    store = cache if cache is not None else WorldCache()
    if use_cache:
        cached = store.load(config)
        if cached is not None:
            return cached, True
    world = build_world(config, jobs=jobs, ground_truth=ground_truth)
    if use_cache:
        try:
            store.store(world)
        except OSError:
            pass
    return world, False
