"""CSV/JSON persistence for generated datasets.

The on-disk layout mirrors how a real measurement study would publish its
cleaned data:

* ``users.csv`` — one row per (user, service period) with the user-level
  covariates repeated, like a denormalized release; the interchange and
  golden format (text diffs, third-party ingest);
* ``users.npy`` — the same rows as a columnar shard (numpy structured
  array, see :mod:`repro.datasets.columns`); the fast load path, read
  memory-mapped so consumers touch only the columns they use;
* ``plans.csv`` — the retail-plan survey;
* ``config.json`` — the world configuration, for provenance.

Round-tripping through :func:`write_users_csv` / :func:`read_users_csv`
reconstructs equivalent :class:`~repro.datasets.records.UserRecord`
objects (extras and 2014 follow-up fields included).
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import numbers
from collections.abc import Mapping
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.upgrades import NetworkId, ServicePeriod
from ..exceptions import DatasetError
from ..market.survey import PlanSurvey
from .columns import PERIOD_FIELDS, ROW_DTYPE, USER_FIELDS, UserColumns
from .records import PeriodObservation, UserRecord
from .world import WorldConfig

__all__ = [
    "config_from_payload",
    "config_payload",
    "read_config_json",
    "read_survey_csv",
    "read_users_csv",
    "read_users_npy",
    "survey_csv_text",
    "write_config_json",
    "write_plans_csv",
    "write_survey_csv",
    "write_users_csv",
    "write_users_npy",
]

# Canonical CSV column order, shared with the columnar schema.
_USER_FIELDS = USER_FIELDS
_PERIOD_FIELDS = PERIOD_FIELDS


def _encode_profile(profile: tuple[float, ...] | None) -> str:
    """Semicolon-joined 24-hour profile; empty when absent.

    The encoding reserves the empty string for ``None``, so only the
    values :func:`_decode_profile` can give back are accepted: ``None``
    or exactly 24 entries. Anything else (an empty tuple, a partial
    profile) would silently decode as a *different* value — reject it
    here instead of corrupting the round-trip.
    """
    if profile is None:
        return ""
    if len(profile) != 24:
        raise DatasetError(
            f"hourly profile must have 24 entries or be None, "
            f"got {len(profile)}"
        )
    return ";".join(f"{v:.6g}" for v in profile)


def _decode_profile(text: str) -> tuple[float, ...] | None:
    if not text:
        return None
    values = tuple(float(v) for v in text.split(";"))
    if len(values) != 24:
        raise DatasetError("hourly profile must have 24 entries")
    return values


def _optional(value: str) -> float | None:
    return None if value == "" else float(value)


def _field(row: Mapping, name: str, convert):
    """Convert one CSV field, naming the column on failure.

    A bare ``float`` ValueError says only what the bad token was; by the
    time it reaches a user (strict raise or lenient errors list) the row
    context is long gone. Re-raise as :class:`DatasetError` carrying the
    column name so ``path:line: column 'x': ...`` messages assemble at
    the row level.
    """
    try:
        return convert(row[name])
    except (ValueError, TypeError) as exc:
        raise DatasetError(f"column {name!r}: {exc}") from None


def write_users_csv(
    users: "Sequence[UserRecord] | UserColumns", path: str | Path
) -> int:
    """Write user records (one row per service period); returns row count.

    Accepts either an object-path record sequence or a columnar dataset;
    a columnar input streams one user at a time (O(1 user) memory) and
    writes byte-identical text — f8 columns round-trip Python floats
    exactly, so the shortest-repr rendering is unchanged.
    """
    path = Path(path)
    if isinstance(users, UserColumns):
        users = users.iter_records()
    n_rows = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_USER_FIELDS + _PERIOD_FIELDS)
        for user in users:
            base = [
                user.user_id, user.source, user.country, user.region,
                user.development, user.vantage, user.technology,
                int(user.bt_user),
                "" if user.price_of_access_usd is None else user.price_of_access_usd,
                "" if user.upgrade_cost_usd_per_mbps is None else user.upgrade_cost_usd_per_mbps,
                user.gdp_per_capita_usd,
                "" if user.plan_data_cap_gb is None else user.plan_data_cap_gb,
                "" if user.web_latency_ms is None else user.web_latency_ms,
                "" if user.ndt_2014_latency_ms is None else user.ndt_2014_latency_ms,
            ]
            for obs in user.observations:
                p = obs.period
                writer.writerow(
                    base
                    + [
                        p.network.isp, p.network.prefix, p.network.city,
                        p.start_day, p.end_day, p.capacity_mbps,
                        p.mean_mbps, p.peak_mbps, p.mean_no_bt_mbps,
                        p.peak_no_bt_mbps, obs.latency_ms,
                        obs.loss_fraction, obs.capacity_up_mbps,
                        obs.n_ndt_tests, obs.n_usage_samples,
                        _encode_profile(obs.hourly_mean_mbps),
                        "" if obs.mean_up_mbps is None else obs.mean_up_mbps,
                        "" if obs.peak_up_mbps is None else obs.peak_up_mbps,
                    ]
                )
                n_rows += 1
    return n_rows


def read_users_csv(
    path: str | Path, errors: list[str] | None = None
) -> list[UserRecord]:
    """Read user records written by :func:`write_users_csv`.

    Strict by default: any malformed row raises a :class:`DatasetError`
    naming the file, line number, and offending column. Pass an
    ``errors`` list to read leniently instead — rows (or whole users)
    that fail to parse or validate are skipped and one message per
    casualty (same format as the strict raise) is appended to the list.
    The lenient path is what
    :func:`repro.datasets.sanitize.ingest_users` builds on for datasets
    of unknown hygiene.
    """
    path = Path(path)
    lenient = errors is not None
    grouped: dict[str, dict] = {}
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        expected = set(_USER_FIELDS + _PERIOD_FIELDS)
        if reader.fieldnames is None or set(reader.fieldnames) != expected:
            raise DatasetError(f"{path}: unexpected columns")
        for line, row in enumerate(reader, start=2):
            try:
                period = ServicePeriod(
                    user_id=row["user_id"],
                    network=NetworkId(row["isp"], row["prefix"], row["city"]),
                    start_day=_field(row, "start_day", float),
                    end_day=_field(row, "end_day", float),
                    capacity_mbps=_field(row, "capacity_mbps", float),
                    mean_mbps=_field(row, "mean_mbps", float),
                    peak_mbps=_field(row, "peak_mbps", float),
                    mean_no_bt_mbps=_field(row, "mean_no_bt_mbps", float),
                    peak_no_bt_mbps=_field(row, "peak_no_bt_mbps", float),
                )
                observation = PeriodObservation(
                    period=period,
                    latency_ms=_field(row, "latency_ms", float),
                    loss_fraction=_field(row, "loss_fraction", float),
                    capacity_up_mbps=_field(row, "capacity_up_mbps", float),
                    n_ndt_tests=_field(row, "n_ndt_tests", int),
                    n_usage_samples=_field(row, "n_usage_samples", int),
                    hourly_mean_mbps=_field(
                        row, "hourly_mean_mbps", _decode_profile
                    ),
                    mean_up_mbps=_field(row, "mean_up_mbps", _optional),
                    peak_up_mbps=_field(row, "peak_up_mbps", _optional),
                )
            except (ValueError, TypeError, KeyError, DatasetError) as exc:
                message = f"{path}:{line}: {exc}"
                if not lenient:
                    raise DatasetError(message) from None
                errors.append(message)
                continue
            entry = grouped.setdefault(
                row["user_id"], {"row": row, "observations": []}
            )
            entry["observations"].append(observation)
    users = []
    for entry in grouped.values():
        row = entry["row"]
        observations = sorted(
            entry["observations"], key=lambda o: o.period.start_day
        )
        try:
            users.append(
                UserRecord(
                    user_id=row["user_id"],
                    source=row["source"],
                    country=row["country"],
                    region=row["region"],
                    development=row["development"],
                    vantage=row["vantage"],
                    technology=row["technology"],
                    bt_user=bool(_field(row, "bt_user", int)),
                    observations=tuple(observations),
                    price_of_access_usd=_field(
                        row, "price_of_access_usd", _optional
                    ),
                    upgrade_cost_usd_per_mbps=_field(
                        row, "upgrade_cost_usd_per_mbps", _optional
                    ),
                    gdp_per_capita_usd=_field(
                        row, "gdp_per_capita_usd", float
                    ),
                    plan_data_cap_gb=_field(row, "plan_data_cap_gb", _optional),
                    web_latency_ms=_field(row, "web_latency_ms", _optional),
                    ndt_2014_latency_ms=_field(
                        row, "ndt_2014_latency_ms", _optional
                    ),
                )
            )
        except (ValueError, TypeError, KeyError, DatasetError) as exc:
            message = f"{path}: user {row.get('user_id', '?')}: {exc}"
            if not lenient:
                raise DatasetError(message) from None
            errors.append(message)
    return sorted(users, key=lambda u: u.user_id)


def write_users_npy(columns: UserColumns, path: str | Path) -> int:
    """Write a columnar users shard (``.npy``); returns the row count.

    The shard is the verbatim structured array — loading it back is an
    mmap, not a parse. ``users.csv`` stays the golden interchange copy.
    """
    path = Path(path)
    with path.open("wb") as handle:
        np.save(handle, columns.rows, allow_pickle=False)
    return columns.n_rows


def read_users_npy(path: str | Path, *, mmap: bool = True) -> UserColumns:
    """Load a columnar users shard written by :func:`write_users_npy`.

    Memory-mapped by default, so consumers only fault in the columns
    they touch. Raises :class:`DatasetError` on anything that is not a
    current-format shard (truncated file, foreign array, stale schema —
    the dtype *is* the format version check).
    """
    path = Path(path)
    try:
        rows = np.load(
            path, mmap_mode="r" if mmap else None, allow_pickle=False
        )
    except (ValueError, OSError, EOFError) as exc:
        raise DatasetError(f"{path}: not a columnar users shard ({exc})")
    if not isinstance(rows, np.ndarray) or rows.dtype != ROW_DTYPE:
        raise DatasetError(
            f"{path}: columnar shard schema mismatch (stale or foreign "
            "users.npy); rebuild the world"
        )
    return UserColumns(rows)


def write_plans_csv(survey: PlanSurvey, path: str | Path) -> int:
    """Write the retail-plan survey; returns the number of plan rows."""
    path = Path(path)
    n_rows = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "country", "isp", "name", "download_mbps", "upload_mbps",
                "monthly_price_local", "currency", "monthly_price_usd_ppp",
                "technology", "data_cap_gb", "dedicated",
            ]
        )
        for plan in survey.all_plans():
            writer.writerow(
                [
                    plan.country, plan.isp, plan.name, plan.download_mbps,
                    plan.upload_mbps, plan.monthly_price_local,
                    plan.currency.code, plan.monthly_price_usd_ppp,
                    plan.technology.value,
                    "" if plan.data_cap_gb is None else plan.data_cap_gb,
                    int(plan.dedicated),
                ]
            )
            n_rows += 1
    return n_rows


_SURVEY_FIELDS = [
    "country", "region", "development", "gdp_per_capita_ppp_usd",
    "internet_penetration", "currency_code", "units_per_usd",
    "ppp_market_ratio", "isp", "name", "download_mbps", "upload_mbps",
    "monthly_price_local", "technology", "data_cap_gb", "dedicated",
]


def survey_csv_text(survey: PlanSurvey) -> str:
    """The survey's canonical CSV rendering as one string.

    Countries iterate in the survey's sorted order, so the text is a
    deterministic function of the survey's value — a built survey and a
    cache-loaded one render identically, which makes this the survey's
    content address for fragment-level recompute keys.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_SURVEY_FIELDS)
    for country in survey.countries:
        market = survey.markets[country]
        economy = market.economy
        for plan in market.plans:
            writer.writerow(
                [
                    country, economy.region.value,
                    economy.development.value,
                    economy.gdp_per_capita_ppp_usd,
                    economy.internet_penetration,
                    plan.currency.code, plan.currency.units_per_usd,
                    plan.currency.ppp_market_ratio, plan.isp,
                    plan.name, plan.download_mbps, plan.upload_mbps,
                    plan.monthly_price_local, plan.technology.value,
                    "" if plan.data_cap_gb is None else plan.data_cap_gb,
                    int(plan.dedicated),
                ]
            )
    return buffer.getvalue()


def write_survey_csv(survey: PlanSurvey, path: str | Path) -> int:
    """Write the full survey (plans plus the economies needed to rebuild
    the markets); returns the number of plan rows.

    Unlike :func:`write_plans_csv` (a flat export), this format
    round-trips through :func:`read_survey_csv`.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        handle.write(survey_csv_text(survey))
    return sum(
        len(survey.markets[country].plans) for country in survey.countries
    )


def read_survey_csv(path: str | Path) -> PlanSurvey:
    """Rebuild a :class:`PlanSurvey` written by :func:`write_survey_csv`."""
    from ..market.currency import Currency
    from ..market.economy import DevelopmentLevel, Economy, Region
    from ..market.market import CountryMarket
    from ..market.plans import BroadbandPlan, PlanTechnology

    path = Path(path)
    grouped: dict[str, dict] = {}
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or set(reader.fieldnames) != set(
            _SURVEY_FIELDS
        ):
            raise DatasetError(f"{path}: unexpected survey columns")
        for line, row in enumerate(reader, start=2):
            try:
                currency = Currency(
                    code=row["currency_code"],
                    units_per_usd=_field(row, "units_per_usd", float),
                    ppp_market_ratio=_field(row, "ppp_market_ratio", float),
                )
                plan = BroadbandPlan(
                    country=row["country"],
                    isp=row["isp"],
                    name=row["name"],
                    download_mbps=_field(row, "download_mbps", float),
                    upload_mbps=_field(row, "upload_mbps", float),
                    monthly_price_local=_field(
                        row, "monthly_price_local", float
                    ),
                    currency=currency,
                    technology=_field(row, "technology", PlanTechnology),
                    data_cap_gb=_field(row, "data_cap_gb", _optional),
                    dedicated=bool(_field(row, "dedicated", int)),
                )
            except (ValueError, TypeError, KeyError, DatasetError) as exc:
                raise DatasetError(f"{path}:{line}: {exc}") from None
            entry = grouped.setdefault(
                row["country"], {"row": row, "plans": []}
            )
            entry["plans"].append(plan)
    markets = {}
    for country, entry in grouped.items():
        row = entry["row"]
        try:
            economy = Economy(
                country=country,
                region=_field(row, "region", Region),
                development=_field(row, "development", DevelopmentLevel),
                gdp_per_capita_ppp_usd=_field(
                    row, "gdp_per_capita_ppp_usd", float
                ),
                currency=entry["plans"][0].currency,
                internet_penetration=_field(
                    row, "internet_penetration", float
                ),
            )
        except (ValueError, TypeError, KeyError, DatasetError) as exc:
            raise DatasetError(f"{path}: country {country}: {exc}") from None
        markets[country] = CountryMarket(
            economy=economy, plans=tuple(entry["plans"])
        )
    return PlanSurvey(markets=markets)


def _canonical_json(value, path: str):
    """Coerce a config payload value to JSON-native types, recursively.

    Cache keys hash this payload, so every value must serialize the
    same way forever: numpy scalars and other ``Integral``/``Real``
    duck-types collapse to plain int/float, and anything without an
    unambiguous JSON form (``Path``, ``set``, arbitrary objects) is an
    error here — not silently stringified into an unstable hash.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise DatasetError(
                    f"config field {path} has a non-string key {key!r}"
                )
            out[key] = _canonical_json(item, f"{path}.{key}")
        return out
    if isinstance(value, (list, tuple)):
        return [
            _canonical_json(item, f"{path}[{i}]")
            for i, item in enumerate(value)
        ]
    raise DatasetError(
        f"config field {path} has non-JSON-native value {value!r} "
        f"of type {type(value).__name__}; convert it explicitly"
    )


def config_payload(config: WorldConfig) -> dict:
    """JSON-ready dict of a config, omitting fields at their defaults
    that postdate the original format (``faults``, ``sanitize``), so
    fault-free configs serialize byte-identically to the original layout
    and hash to the same cache keys. All values are canonicalized to
    JSON-native types; non-native values raise instead of being
    stringified into an unstable cache key."""
    payload = dataclasses.asdict(config)
    payload["years"] = list(config.years)
    if config.faults is None:
        payload.pop("faults")
    if config.sanitize is False:
        payload.pop("sanitize")
    return _canonical_json(payload, "config")


def write_config_json(config: WorldConfig, path: str | Path) -> None:
    """Persist a world configuration for provenance."""
    payload = config_payload(config)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def config_from_payload(payload: Mapping) -> WorldConfig:
    """Rebuild a :class:`WorldConfig` from a :func:`config_payload`
    dict (the ``config.json`` schema, also carried inside DAG stage
    configs). The inverse is not exact field-by-field — omitted
    ``faults``/``sanitize`` come back at their defaults — but
    round-tripping any config through payload and back yields an equal
    config."""
    data = dict(payload)
    if "years" in data:  # optional in hand-written (partial) payloads
        data["years"] = tuple(data["years"])
    try:
        return WorldConfig(**data)
    except TypeError as exc:
        raise DatasetError(f"not a world config payload ({exc})") from None


def read_config_json(path: str | Path) -> WorldConfig:
    """Load a world configuration written by :func:`write_config_json`."""
    payload = json.loads(Path(path).read_text())
    try:
        return config_from_payload(payload)
    except DatasetError as exc:
        raise DatasetError(f"{path}: {exc}") from None
