"""End-to-end world builder.

Generates the markets, draws subscriber populations, simulates three
calendar years of traffic and yearly service reviews per household, runs
the simulated measurement clients over the result, and assembles the
analysis-ready datasets. This module is the only place where ground truth
(latent users) and measurements meet; everything downstream sees records
only.

Determinism and parallelism
---------------------------

Every household owns an independent random stream derived from
``SeedSequence([seed, source_stream, country_index, user_index])``, so a
user's draws never depend on how many users ran before it, in which
process, or in which order. World-level state (markets, survey, city
names) comes from separate fixed streams. Consequently
``build_world(config, jobs=N)`` is **bit-identical** for every worker
count ``N`` and every chunk size — the equivalence tests in
``tests/datasets/test_parallel_builder.py`` lock this down.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..behavior.choice import ChoiceModel
from ..behavior.demand import DemandProcess
from ..behavior.population import LatentUser, PopulationModel
from ..behavior.upgrades import UpgradePolicy
from ..core.executor import resolve_jobs, run_sharded, stream_rng
from ..core.metrics import demand_summary
from ..core.upgrades import NetworkId, ServicePeriod
from ..exceptions import DatasetError
from ..faults.injector import FaultInjector
from ..market.countries import CountryProfile, build_profiles
from ..market.market import CountryMarket
from ..market.plans import BroadbandPlan
from ..market.survey import PlanSurvey, generate_survey
from ..measurement.dasu import DasuClient, DasuVantage
from ..measurement.gateway import FccGateway
from ..measurement.ndt import NdtClient
from ..measurement.web_latency import WebLatencyProber
from ..network.geo import NetworkPlanner, sample_cities
from ..obs import ledger as obs
from ..obs.ledger import RunLedger, scoped
from ..network.link import AccessLink, provision_link
from ..network.path import NetworkPath, build_path
from ..network.technology import sample_technology
from ..traffic.generator import generate_usage_series
from .columns import UserColumns, records_to_rows
from .records import PeriodObservation, UserRecord, hourly_profile
from .sanitize import (
    SanitizationReport,
    sanitize_columns,
    sanitize_samples,
    strip_sentinels,
)
from .traces import UsageTrace
from .world import DasuDataset, FccDataset, World, WorldConfig

__all__ = ["build_world"]

_DAYS_PER_YEAR = 365.0
#: Minimum usable usage samples per period; below this the period (and in
#: practice the user-year) is dropped, as the paper drops sparse vantages.
_MIN_SAMPLES = 150
_MIN_NO_BT_SAMPLES = 60

#: Fixed stream tags for :class:`numpy.random.SeedSequence` derivation.
#: Changing any of these changes every world; they are part of the
#: on-disk cache key via the package version.
_MARKET_STREAM = 1
_DASU_STREAM = 2
_FCC_STREAM = 3
_CITY_STREAM = 4
#: Prefix tag of the per-household *fault* streams. Faults draw from
#: ``SeedSequence([seed, _FAULT_STREAM, source_stream, country, user])``
#: — a different tree node than the household's generative stream — so
#: enabling injection never perturbs the clean draws, and a zero-rate
#: injector is byte-identical to no injector.
_FAULT_STREAM = 5

#: Households simulated per sharded task. Small enough to balance load
#: across workers, large enough to amortize task dispatch; the result is
#: invariant to this value (each user carries its own seed stream).
_DEFAULT_CHUNK_SIZE = 32


def _user_rng(
    seed: int, stream: int, country_index: int, user_index: int
) -> np.random.Generator:
    """The independent random stream owned by one household."""
    return stream_rng(seed, stream, country_index, user_index)


def _fault_rng(
    seed: int, stream: int, country_index: int, user_index: int
) -> np.random.Generator:
    """The household's *fault* stream, disjoint from its clean draws."""
    return stream_rng(seed, _FAULT_STREAM, stream, country_index, user_index)


def _allocate_counts(weights: np.ndarray, total: int) -> np.ndarray:
    """Largest-remainder allocation of ``total`` users to countries."""
    if total == 0:
        return np.zeros(len(weights), dtype=int)
    shares = weights / weights.sum() * total
    counts = np.floor(shares).astype(int)
    remainder = total - counts.sum()
    if remainder > 0:
        order = np.argsort(-(shares - counts))
        counts[order[:remainder]] += 1
    return counts


@dataclass
class _YearOutcome:
    observation: PeriodObservation
    measured_peak_utilization: float
    trace: UsageTrace | None = None


class _CountrySimulator:
    """Simulates one household of one country for one data source.

    Instances are cheap and single-use: the builder creates one per
    household, handing it that household's private random stream plus the
    country-level immutables (profile, market, city names).
    """

    def __init__(
        self,
        profile: CountryProfile,
        market: CountryMarket,
        config: WorldConfig,
        rng: np.random.Generator,
        source: str,
        cities: tuple[str, ...] | None = None,
        injector: FaultInjector | None = None,
        report: SanitizationReport | None = None,
    ) -> None:
        self.profile = profile
        self.market = market
        self.config = config
        self.rng = rng
        self.source = source
        self.cities = cities
        #: Fault injector fed by this household's dedicated fault stream
        #: (``None`` for a pristine substrate).
        self.injector = injector
        #: Sample-level sanitization accounting, shared across the chunk
        #: (``None`` unless ``config.sanitize``).
        self.report = report
        self.isps = tuple(sorted({p.isp for p in market.plans}))
        self.population = PopulationModel()
        self.choice_model = ChoiceModel()
        self.upgrade_policy = UpgradePolicy(self.choice_model)
        self.ndt = NdtClient(rng)
        self.web_prober = WebLatencyProber(rng)

    # -- plan selection ----------------------------------------------------

    def _household_market(self) -> CountryMarket:
        """The plan set actually available at one household's address.

        Most households see the full national market; a minority are
        supply-constrained (rural loops, unserved streets) and can only
        buy slow tiers no matter what they need or can afford.
        """
        if self.rng.random() >= self.config.address_constraint_rate:
            return self.market
        residential = [p for p in self.market.plans if not p.dedicated]
        if not residential:
            residential = list(self.market.plans)
        # Constrained addresses can still get low-single-digit megabits
        # (long DSL loops); genuinely sub-megabit US subscribers are
        # light users by choice, per Table 4 / Fig. 9's demand levels.
        cap = float(np.exp(self.rng.uniform(np.log(2.0), np.log(16.0))))
        available = tuple(
            p for p in residential if p.download_mbps <= cap
        )
        if not available:
            available = (
                min(residential, key=lambda p: p.download_mbps),
            )
        return CountryMarket(economy=self.market.economy, plans=available)

    def _choose_plan(
        self, user: LatentUser, market: CountryMarket
    ) -> BroadbandPlan | None:
        if not self.config.price_selection_enabled:
            # Ablation: sever the price/budget mechanism entirely — every
            # candidate subscribes, to a uniformly random residential plan.
            candidates = [p for p in market.plans if not p.dedicated]
            if not candidates:
                candidates = list(market.plans)
            return candidates[int(self.rng.integers(len(candidates)))]
        choice = self.choice_model.choose(
            user,
            market,
            self.rng,
            promoted_tier_mbps=self.profile.promoted_tier_mbps,
            promoted_adoption=self.profile.promoted_adoption,
        )
        return None if choice is None else choice.plan

    def _draw_subscriber(
        self, user_id: str, market: CountryMarket
    ) -> tuple[LatentUser, BroadbandPlan] | None:
        """Draw candidate households until one subscribes."""
        economy = market.economy
        for _ in range(self.config.max_candidate_draws):
            user = self.population.sample_user(
                user_id,
                economy,
                self.rng,
                bt_population=(self.source == "dasu"),
            )
            plan = self._choose_plan(user, market)
            if plan is not None:
                return user, plan
        return None

    # -- physical provisioning ----------------------------------------------

    def _provision(self, plan: BroadbandPlan) -> AccessLink:
        if plan.technology.is_fixed_line:
            technology = sample_technology(
                self.profile.tech_mix, plan.download_mbps, self.rng
            )
        else:
            technology = plan.technology
        return provision_link(
            plan.download_mbps,
            plan.upload_mbps,
            technology,
            self.rng,
            loss_multiplier=self.profile.loss_multiplier,
        )

    def _path_for(self, link: AccessLink, previous: NetworkPath | None) -> NetworkPath:
        if previous is None:
            return build_path(link, self.profile.extra_latency_ms, self.rng)
        # Same home, new line: the wide-area situation is unchanged.
        return NetworkPath(
            link=link,
            distance_rtt_ms=previous.distance_rtt_ms,
            cdn_gap_ms=previous.cdn_gap_ms,
            path_loss_fraction=previous.path_loss_fraction,
        )

    # -- one observed year ---------------------------------------------------

    def _demand_process(
        self,
        user: LatentUser,
        path: NetworkPath,
        data_cap_gb: float | None,
    ) -> DemandProcess:
        process = DemandProcess.for_user(user, path, data_cap_gb=data_cap_gb)
        if self.config.quality_suppression_enabled:
            return process
        # Ablation: no QoE suppression and no TCP ceiling below line rate.
        return DemandProcess(
            offered_peak_mbps=user.need_mbps,
            ceiling_mbps=path.link.download_mbps,
            activity_level=process.activity_level,
            burstiness_sigma=process.burstiness_sigma,
            rate_median_share=process.rate_median_share,
            bt_user=process.bt_user,
        )

    def _collect_usage(
        self, series
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None] | None:
        """(down rates, bt flags, local hours, up rates) as collected."""
        if self.source == "dasu":
            vantage = (
                DasuVantage.UPNP
                if self.rng.random() < 0.55
                else DasuVantage.DIRECT
            )
            client = DasuClient(vantage, self.rng)
            for _ in range(3):
                sampled = client.collect(series)
                if (
                    sampled.n_samples >= _MIN_SAMPLES
                    and int(np.sum(~sampled.bt_active)) >= _MIN_NO_BT_SAMPLES
                ):
                    return (
                        sampled.rates_mbps,
                        sampled.bt_active,
                        sampled.hours,
                        sampled.up_rates_mbps,
                    )
            return None
        gateway = FccGateway(self.rng)
        hourly, hours, up_hourly = gateway.collect(series)
        # Gateways see bytes, not applications: no BitTorrent visibility.
        return hourly, np.zeros(hourly.size, dtype=bool), hours, up_hourly

    def _damage_and_clean(
        self,
        rates: np.ndarray,
        bt_flags: np.ndarray,
        hours: np.ndarray,
        up_rates: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
        """Fault injection then sample-level sanitization, in that order.

        With neither configured this is the identity, so clean worlds
        take byte-identical paths to pre-fault-injection builds. With
        faults but no sanitization, reset sentinels are still stripped
        (without repair accounting): a ``-1`` rate must never reach
        :func:`~repro.core.metrics.demand_summary`.
        """
        if self.injector is not None:
            if self.source == "dasu":
                rates, bt_flags, hours, up_rates = (
                    self.injector.perturb_dasu_samples(
                        rates, bt_flags, hours, up_rates,
                        interval_s=self.config.sample_interval_s,
                    )
                )
            else:
                rates, bt_flags, hours, up_rates = (
                    self.injector.perturb_gateway_samples(
                        rates, bt_flags, hours, up_rates
                    )
                )
        if self.config.sanitize:
            rates, bt_flags, hours, up_rates = sanitize_samples(
                rates, bt_flags, hours, up_rates,
                # Only the Dasu path reads 32-bit counters; gateway
                # records aggregate 64-bit counters and cannot wrap.
                counter_interval_s=(
                    self.config.sample_interval_s
                    if self.source == "dasu"
                    else None
                ),
                report=self.report,
            )
        elif self.injector is not None:
            rates, bt_flags, hours, up_rates = strip_sentinels(
                rates, bt_flags, hours, up_rates
            )
        return rates, bt_flags, hours, up_rates

    def _observe_year(
        self,
        user: LatentUser,
        path: NetworkPath,
        network: NetworkId,
        year_index: int,
        data_cap_gb: float | None,
        keep_trace: bool = False,
    ) -> _YearOutcome | None:
        config = self.config
        year_start = year_index * _DAYS_PER_YEAR
        max_offset = max(1.0, _DAYS_PER_YEAR - config.days_per_year - 1.0)
        start_day = year_start + float(self.rng.uniform(0.0, max_offset))
        end_day = start_day + config.days_per_year

        demand = self._demand_process(user, path, data_cap_gb)
        series = generate_usage_series(
            demand,
            config.days_per_year,
            config.sample_interval_s,
            self.rng,
            start_hour=float(self.rng.uniform(0.0, 24.0)),
        )
        collected = self._collect_usage(series)
        if collected is None:
            return None
        rates, bt_flags, hours, up_rates = self._damage_and_clean(*collected)
        if rates.size == 0:
            # Injection (drops, gaps, resets) can gut a period entirely.
            return None
        with_bt = demand_summary(rates)
        no_bt_rates = rates[~bt_flags]
        no_bt = demand_summary(no_bt_rates) if no_bt_rates.size else with_bt
        up_summary = (
            demand_summary(up_rates)
            if up_rates is not None and up_rates.size
            else None
        )

        tests = self.ndt.run_tests(
            path,
            config.ndt_tests_per_period,
            (start_day, end_day),
            typical_cross_traffic_mbps=with_bt.mean_mbps,
        )
        if self.injector is not None:
            tests = self.injector.perturb_ndt(tests)
            if not tests:
                # Every run failed: no capacity estimate, no period.
                return None
        capacity = max(t.download_mbps for t in tests)
        capacity_up = max(t.upload_mbps for t in tests)
        latency = float(np.mean([t.rtt_ms for t in tests]))
        loss = float(np.mean([t.loss_fraction for t in tests]))

        period = ServicePeriod(
            user_id=user.user_id,
            network=network,
            start_day=start_day,
            end_day=end_day,
            capacity_mbps=capacity,
            mean_mbps=with_bt.mean_mbps,
            peak_mbps=with_bt.peak_mbps,
            mean_no_bt_mbps=no_bt.mean_mbps,
            peak_no_bt_mbps=no_bt.peak_mbps,
        )
        observation = PeriodObservation(
            period=period,
            latency_ms=latency,
            loss_fraction=loss,
            capacity_up_mbps=capacity_up,
            n_ndt_tests=len(tests),
            n_usage_samples=int(rates.size),
            hourly_mean_mbps=hourly_profile(rates, hours),
            mean_up_mbps=None if up_summary is None else up_summary.mean_mbps,
            peak_up_mbps=None if up_summary is None else up_summary.peak_mbps,
        )
        trace = None
        if keep_trace:
            trace = UsageTrace(
                user_id=user.user_id,
                year=2011 + year_index,
                interval_s=(
                    config.sample_interval_s
                    if self.source == "dasu"
                    else 3600.0
                ),
                rates_mbps=rates,
                bt_active=bt_flags,
                hours=hours,
                up_rates_mbps=up_rates,
            )
        return _YearOutcome(
            observation=observation,
            measured_peak_utilization=min(1.0, no_bt.peak_mbps / capacity),
            trace=trace,
        )

    # -- a full household ---------------------------------------------------

    def _observed_year_range(self) -> tuple[int, int]:
        """(first, last) observed year indexes for one panel member.

        Real measurement panels churn: vantage points join and leave. A
        member enters in year 0 with probability ~0.55 (later otherwise)
        and drops out with ~12% probability per subsequent year. Churn is
        what keeps the per-class population composition stationary in the
        longitudinal analysis: fresh low-demand subscribers keep arriving
        while grown households move up and out of their old class.
        """
        n_years = len(self.config.years)
        roll = self.rng.random()
        if n_years == 1 or roll < 0.55:
            entry = 0
        elif n_years == 2 or roll < 0.80:
            entry = 1
        else:
            entry = 2
        exit_index = entry
        while exit_index + 1 < n_years and self.rng.random() >= 0.12:
            exit_index += 1
        return entry, exit_index

    def simulate_user(
        self, user_id: str
    ) -> tuple[UserRecord, LatentUser, tuple[UsageTrace, ...]] | None:
        obs.count("build.households.simulated")
        if self.injector is not None and self.injector.household_lost():
            # Churn: the household vanished before producing any data.
            obs.count("build.households.lost_to_churn")
            return None
        planner = NetworkPlanner(
            self.profile.name,
            self.isps,
            self.rng,
            cities=self.cities,
            prefix_salt=zlib.crc32(user_id.encode("utf-8")),
        )
        keep_traces = (
            self.config.trace_user_fraction > 0.0
            and self.rng.random() < self.config.trace_user_fraction
        )
        household_market = self._household_market()
        drawn = self._draw_subscriber(user_id, household_market)
        if drawn is None:
            obs.count("build.households.no_subscription")
            return None
        user, plan = drawn
        original_user = user
        link = self._provision(plan)
        path = self._path_for(link, previous=None)
        network = planner.home_network(plan.isp)
        entry_year, exit_year = self._observed_year_range()
        if self.injector is not None:
            entry_year, exit_year = self.injector.perturb_panel(
                entry_year, exit_year
            )

        # Demand growth is a single episode (see PopulationModel): pick
        # the year after which the grower's need jumps.
        is_grower = (
            self.config.demand_growth_enabled and user.yearly_need_growth > 1.0
        )
        growth_year = (
            int(self.rng.integers(entry_year, exit_year + 1))
            if is_grower and exit_year > entry_year
            else None
        )

        observations: list[PeriodObservation] = []
        traces: list[UsageTrace] = []
        for year_index in range(entry_year, exit_year + 1):
            outcome = self._observe_year(
                user, path, network, year_index, plan.data_cap_gb,
                keep_trace=keep_traces,
            )
            if outcome is not None:
                observations.append(outcome.observation)
                if outcome.trace is not None:
                    traces.append(outcome.trace)

            if year_index == exit_year:
                break
            need_grew = growth_year is not None and year_index == growth_year
            utilization = (
                outcome.measured_peak_utilization if outcome else 0.0
            )
            if need_grew:
                ratio = user.yearly_need_growth
                user = user.grown()
                utilization = min(1.0, utilization * ratio)
            decision = self.upgrade_policy.review(
                user,
                household_market,
                plan.download_mbps,
                utilization,
                self.rng,
                promoted_tier_mbps=self.profile.promoted_tier_mbps,
                promoted_adoption=self.profile.promoted_adoption,
                need_grew=need_grew,
            )
            if decision.switched and decision.choice is not None:
                plan = decision.choice.plan
                link = self._provision(plan)
                moved = decision.reason == "moved"
                path = self._path_for(link, None if moved else path)
                network = planner.switched_network(network)

        if not observations:
            obs.count("build.households.no_observations")
            return None

        web_latency = None
        ndt_2014 = None
        if self.rng.random() < self.config.web_probe_fraction:
            web_latency = self.web_prober.median_latency_ms(path)
            followup = self.ndt.run_tests(path, 4, (0.0, 30.0))
            if self.injector is not None:
                followup = self.injector.perturb_ndt(followup)
            if followup:
                ndt_2014 = float(np.mean([t.rtt_ms for t in followup]))

        vantage = "gateway"
        if self.source == "dasu":
            vantage = "upnp" if self.rng.random() < 0.55 else "direct"
        record = UserRecord(
            user_id=user_id,
            source=self.source,
            country=self.profile.name,
            region=self.profile.region.value,
            development=self.profile.development.value,
            vantage=vantage,
            technology=link.technology.value,
            bt_user=user.bt_user,
            observations=tuple(observations),
            price_of_access_usd=self.market.price_of_access(),
            upgrade_cost_usd_per_mbps=self.market.upgrade_cost_usd_per_mbps,
            gdp_per_capita_usd=self.market.economy.gdp_per_capita_ppp_usd,
            plan_data_cap_gb=plan.data_cap_gb,
            web_latency_ms=web_latency,
            ndt_2014_latency_ms=ndt_2014,
        )
        return record, original_user, tuple(traces)


# -- sharded orchestration ---------------------------------------------------


@dataclass(frozen=True)
class _ChunkSpec:
    """One shardable unit of work: a contiguous index range of one
    country's households for one data source. Specs are tiny and
    picklable; all heavyweight state is rebuilt per worker from the
    configuration."""

    source: str
    country: str
    country_index: int
    stream: int
    start: int
    count: int


class _BuildContext:
    """World-level deterministic state, rebuilt identically in every
    worker process from the configuration alone."""

    def __init__(self, config: WorldConfig, ground_truth: bool = True) -> None:
        self.config = config
        self.ground_truth = ground_truth
        market_rng = np.random.default_rng([config.seed, _MARKET_STREAM])
        self.profiles = build_profiles(
            market_rng, include_synthetic=config.include_synthetic_countries
        )
        self.profile_map = {p.name: p for p in self.profiles}
        self.survey = generate_survey(self.profiles, market_rng)
        self._cities: dict[tuple[int, int], tuple[str, ...]] = {}

    def cities_for(self, stream: int, country_index: int) -> tuple[str, ...]:
        """Country-level city names, from their own fixed stream so they
        are identical no matter which worker asks first."""
        key = (stream, country_index)
        if key not in self._cities:
            rng = np.random.default_rng(
                [self.config.seed, _CITY_STREAM, stream, country_index]
            )
            self._cities[key] = sample_cities(rng)
        return self._cities[key]


def _plan_chunks(
    config: WorldConfig, profiles: tuple[CountryProfile, ...], chunk_size: int
) -> list[_ChunkSpec]:
    """Deterministic shard plan: country enumeration order, then index."""
    weights = np.array([p.dasu_user_weight for p in profiles], dtype=float)
    dasu_counts = _allocate_counts(weights, config.n_dasu_users)
    specs: list[_ChunkSpec] = []
    for country_index, profile in enumerate(profiles):
        count = int(dasu_counts[country_index])
        for start in range(0, count, chunk_size):
            specs.append(
                _ChunkSpec(
                    source="dasu",
                    country=profile.name,
                    country_index=country_index,
                    stream=_DASU_STREAM,
                    start=start,
                    count=min(chunk_size, count - start),
                )
            )
    if config.n_fcc_users > 0:
        us_index = next(
            (i for i, p in enumerate(profiles) if p.name == "US"), None
        )
        if us_index is None:
            raise DatasetError("the FCC panel requires a US market")
        for start in range(0, config.n_fcc_users, chunk_size):
            specs.append(
                _ChunkSpec(
                    source="fcc",
                    country="US",
                    country_index=us_index,
                    stream=_FCC_STREAM,
                    start=start,
                    count=min(chunk_size, config.n_fcc_users - start),
                )
            )
    return specs


#: One chunk's yield, columnized at the worker: the surviving users'
#: period rows (builder append order preserved), plus ground-truth
#: latents and raw traces keyed by user id — both usually empty/tiny, so
#: the pickled payload is one compact array instead of an object list.
_ChunkColumns = tuple[
    np.ndarray,
    tuple[tuple[str, LatentUser], ...],
    tuple[tuple[str, tuple[UsageTrace, ...]], ...],
]
_ChunkResult = tuple[_ChunkColumns, "SanitizationReport | None"]


def _simulate_chunk(context: _BuildContext, spec: _ChunkSpec) -> _ChunkResult:
    """Simulate one chunk of households; shared by serial and parallel
    paths, so the two are equivalent by construction.

    Returns the chunk's surviving users as a columnar block plus its
    share of the sample-level sanitization accounting (``None`` unless
    ``config.sanitize``); counters are merged across chunks by addition,
    so the totals are identical for every chunking.
    """
    config = context.config
    profile = context.profile_map[spec.country]
    market = context.survey.market(spec.country)
    cities = context.cities_for(spec.stream, spec.country_index)
    report = SanitizationReport() if config.sanitize else None
    records: list[UserRecord] = []
    latents: list[tuple[str, LatentUser]] = []
    traces: list[tuple[str, tuple[UsageTrace, ...]]] = []
    with obs.span(
        f"build/chunk/{spec.source}/{spec.country}/{spec.start:05d}"
    ):
        for user_index in range(spec.start, spec.start + spec.count):
            rng = _user_rng(
                config.seed, spec.stream, spec.country_index, user_index
            )
            injector = None
            if config.faults is not None:
                injector = FaultInjector(
                    config.faults,
                    _fault_rng(
                        config.seed, spec.stream, spec.country_index, user_index
                    ),
                )
            simulator = _CountrySimulator(
                profile, market, config, rng, source=spec.source, cities=cities,
                injector=injector, report=report,
            )
            outcome = simulator.simulate_user(
                f"{spec.source}-{spec.country}-{user_index:05d}"
            )
            if outcome is None:
                continue
            record, latent, user_traces = outcome
            records.append(record)
            if context.ground_truth:
                latents.append((record.user_id, latent))
            if user_traces:
                traces.append((record.user_id, user_traces))
    return (records_to_rows(records), tuple(latents), tuple(traces)), report


#: Per-process build context for pool workers (set by ``_worker_init``).
_WORKER_CONTEXT: _BuildContext | None = None


def _worker_init(config: WorldConfig, ground_truth: bool = True) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = _BuildContext(config, ground_truth)


def _worker_chunk(spec: _ChunkSpec) -> _ChunkResult:
    assert _WORKER_CONTEXT is not None, "worker used before initialization"
    return _simulate_chunk(_WORKER_CONTEXT, spec)


def build_world(
    config: WorldConfig | None = None,
    *,
    jobs: int | None = 1,
    chunk_size: int | None = None,
    ledger: RunLedger | None = None,
    ground_truth: bool = True,
) -> World:
    """Build a complete synthetic world from a configuration.

    ``jobs`` shards the per-household simulation across that many worker
    processes (``None`` = one per CPU); the result is bit-identical for
    every ``jobs`` and ``chunk_size`` value.

    ``ground_truth=False`` skips retaining the per-household latent
    users — they are never persisted or analyzed, only compared against
    in tests — which keeps large-world builds free of the one
    O(households) object collection that remains.

    The build accounts for itself in a :class:`~repro.obs.ledger.
    RunLedger` (pass one to accumulate across stages, or let the builder
    create one) attached to the returned world as ``world.ledger``.
    Counters add and spans sort canonically, so the serialized ledger is
    byte-identical for every ``jobs`` value, like the world itself.
    """
    if config is None:
        config = WorldConfig()
    n_jobs = resolve_jobs(jobs)
    if chunk_size is not None and chunk_size < 1:
        raise DatasetError("chunk size must be a positive integer")
    size = chunk_size if chunk_size is not None else _DEFAULT_CHUNK_SIZE
    if ledger is None:
        ledger = RunLedger()

    context = _BuildContext(config, ground_truth)
    specs = _plan_chunks(config, context.profiles, size)
    if n_jobs == 1:
        # Serial path: record straight into the run ledger (the ambient
        # scope makes worker-side instrumentation land there), chunk by
        # chunk in spec order — the same order the parallel path merges
        # shard ledgers in.
        with scoped(ledger):
            chunk_results = [_simulate_chunk(context, spec) for spec in specs]
    else:
        chunk_results = run_sharded(
            _worker_chunk,
            specs,
            jobs=n_jobs,
            initializer=_worker_init,
            initargs=(config, ground_truth),
            ledger=ledger,
        )

    # Concatenate column chunks in spec (submission) order — exactly the
    # append order of the old object path, so the world is byte-for-byte
    # the same for every jobs/chunk_size value.
    dasu_parts: list[np.ndarray] = []
    fcc_parts: list[np.ndarray] = []
    latents: dict[str, LatentUser] = {}
    traces: dict[str, tuple[UsageTrace, ...]] = {}
    report = SanitizationReport() if config.sanitize else None
    for spec, ((rows, chunk_latents, chunk_traces), chunk_report) in zip(
        specs, chunk_results
    ):
        if report is not None and chunk_report is not None:
            report.merge(chunk_report)
        (dasu_parts if spec.source == "dasu" else fcc_parts).append(rows)
        latents.update(chunk_latents)
        traces.update(chunk_traces)
    dasu_columns = UserColumns.concat(dasu_parts)
    fcc_columns = UserColumns.concat(fcc_parts)
    del dasu_parts, fcc_parts, chunk_results

    if report is not None:
        # Record-level cleaning pass (period dedup, NDT-failure and
        # invalid-value exclusion, minimum observed days per host),
        # streamed user-by-user over the columns.
        dasu_columns, report = sanitize_columns(
            dasu_columns,
            dasu_interval_s=config.sample_interval_s,
            report=report,
        )
        fcc_columns, report = sanitize_columns(
            fcc_columns,
            dasu_interval_s=config.sample_interval_s,
            report=report,
        )
        if latents or traces:
            kept = set(dasu_columns.user_ids) | set(fcc_columns.user_ids)
            latents = {k: v for k, v in latents.items() if k in kept}
            traces = {k: v for k, v in traces.items() if k in kept}
        # Bridge the *final* report (sample- and record-level rules both
        # folded in) into the ledger, so the trace's ``sanitize.*``
        # counters equal the persisted ``sanitization.json`` exactly.
        for name, value in sorted(report.ledger_counters().items()):
            ledger.count(name, value)

    ledger.count("build.chunks", len(specs))
    ledger.count("build.users.dasu", dasu_columns.n_users)
    ledger.count("build.users.fcc", fcc_columns.n_users)
    ledger.count(
        "build.periods.kept", dasu_columns.n_rows + fcc_columns.n_rows
    )

    return World(
        config=config,
        profiles=context.profile_map,
        survey=context.survey,
        dasu=DasuDataset(columns=dasu_columns),
        fcc=FccDataset(columns=fcc_columns),
        ground_truth=latents,
        traces=traces,
        sanitization=report,
        ledger=ledger,
    )
