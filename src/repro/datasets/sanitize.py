"""Hardened ingest: the data-cleaning stage of the pipeline.

The paper does not analyze raw collections — it filters to hosts with
enough clean observation, repairs UPnP counter artifacts (Sec. 2.1,
citing DiCioccio et al.), and excludes failed performance tests before
any experiment runs. This module is that stage for the reproduction:
every rule maps to one of the paper's cleaning steps, operates on dirty
(possibly fault-injected, possibly third-party) data, and accounts for
what it did in a per-rule :class:`SanitizationReport`.

Two layers:

* **sample-level** (:func:`sanitize_samples`, :func:`strip_sentinels`,
  :func:`repair_wraps`, :func:`dedup_samples`) — run inside the world
  builder between collection and summarization, where the per-interval
  rate samples still exist;
* **record-level** (:func:`sanitize_users`, :func:`ingest_users`) — run
  over assembled :class:`~repro.datasets.records.UserRecord` datasets:
  period dedup, NDT-failure exclusion, invalid-value exclusion, and the
  paper's minimum-observation floor per host.

The ``-1`` sentinel convention of
:func:`repro.measurement.upnp.deltas_from_readings` and
:func:`repro.measurement.netstat.deltas_from_netstat` is owned here:
:func:`strip_sentinels` is the one place sentinel-flagged samples are
dropped, and the builder routes every faulted collection through it, so
sentinels can never reach a
:class:`~repro.core.metrics.DemandSummary`.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import DatasetError
from ..faults.injector import wrap_quantum_mbps
from .records import UserRecord

__all__ = [
    "MIN_NDT_TESTS",
    "MIN_OBSERVED_DAYS",
    "RuleStats",
    "SanitizationReport",
    "dedup_samples",
    "ingest_users",
    "repair_wraps",
    "sanitize_columns",
    "sanitize_samples",
    "sanitize_users",
    "strip_sentinels",
]

#: Minimum surviving NDT tests for a period's capacity estimate to be
#: trusted (the paper excludes vantages whose tests failed).
MIN_NDT_TESTS = 3
#: Minimum total observed days per host. Chosen to sit just below the
#: cleanest possible Dasu period (150 samples x 30 s = 0.052 days), so
#: the rule never drops an unfaulted host but removes hosts whose
#: collections were gutted by churn, drops, or gaps.
MIN_OBSERVED_DAYS = 0.05
#: Seconds of wall clock one FCC gateway record covers.
_GATEWAY_INTERVAL_S = 3600.0
_SECONDS_PER_DAY = 86400.0


# ---------------------------------------------------------------------------
# The report.
# ---------------------------------------------------------------------------


@dataclass
class RuleStats:
    """What one cleaning rule did: inspected, fixed in place, removed."""

    examined: int = 0
    repaired: int = 0
    dropped: int = 0

    def merge(self, other: "RuleStats") -> None:
        self.examined += other.examined
        self.repaired += other.repaired
        self.dropped += other.dropped


@dataclass
class SanitizationReport:
    """Per-rule accounting of one sanitization pass (mergeable)."""

    rules: dict[str, RuleStats] = field(default_factory=dict)
    users_in: int = 0
    users_kept: int = 0
    periods_in: int = 0
    periods_kept: int = 0
    samples_in: int = 0
    samples_kept: int = 0

    def rule(self, name: str) -> RuleStats:
        return self.rules.setdefault(name, RuleStats())

    def merge(self, other: "SanitizationReport") -> None:
        for name, stats in other.rules.items():
            self.rule(name).merge(stats)
        self.users_in += other.users_in
        self.users_kept += other.users_kept
        self.periods_in += other.periods_in
        self.periods_kept += other.periods_kept
        self.samples_in += other.samples_in
        self.samples_kept += other.samples_kept

    @property
    def total_repaired(self) -> int:
        return sum(s.repaired for s in self.rules.values())

    @property
    def total_dropped(self) -> int:
        return sum(s.dropped for s in self.rules.values())

    def ledger_counters(self) -> dict[str, int]:
        """The report as run-ledger counters (``sanitize.*`` namespace).

        This is the bridge between the sanitization stage and the
        observability layer: the builder records exactly these counters
        into the run ledger, so a ``--trace`` stream's ``sanitize.*``
        counts always equal the :class:`SanitizationReport` the same
        build printed and persisted (``sanitization.json``).
        """
        counters = {
            "sanitize.users.in": self.users_in,
            "sanitize.users.kept": self.users_kept,
            "sanitize.periods.in": self.periods_in,
            "sanitize.periods.kept": self.periods_kept,
            "sanitize.samples.in": self.samples_in,
            "sanitize.samples.kept": self.samples_kept,
        }
        for name, stats in self.rules.items():
            counters[f"sanitize.rule.{name}.examined"] = stats.examined
            counters[f"sanitize.rule.{name}.repaired"] = stats.repaired
            counters[f"sanitize.rule.{name}.dropped"] = stats.dropped
        return counters

    def to_payload(self) -> dict:
        """A JSON-serializable snapshot (inverse of :meth:`from_payload`)."""
        payload = dataclasses.asdict(self)
        payload["rules"] = {
            name: dataclasses.asdict(stats)
            for name, stats in self.rules.items()
        }
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "SanitizationReport":
        rules = {
            str(name): RuleStats(**stats)
            for name, stats in dict(payload.get("rules", {})).items()
        }
        return cls(
            rules=rules,
            users_in=int(payload.get("users_in", 0)),
            users_kept=int(payload.get("users_kept", 0)),
            periods_in=int(payload.get("periods_in", 0)),
            periods_kept=int(payload.get("periods_kept", 0)),
            samples_in=int(payload.get("samples_in", 0)),
            samples_kept=int(payload.get("samples_kept", 0)),
        )

    def format(self) -> str:
        """An aligned per-rule table plus the kept/in totals."""
        lines = [
            "sanitization report ("
            f"users {self.users_kept}/{self.users_in}, "
            f"periods {self.periods_kept}/{self.periods_in}, "
            f"samples {self.samples_kept}/{self.samples_in} kept)"
        ]
        width = max([len(n) for n in self.rules], default=4)
        header = f"  {'rule':<{width}}  {'examined':>9}  {'repaired':>9}  {'dropped':>9}"
        lines.append(header)
        for name in sorted(self.rules):
            s = self.rules[name]
            lines.append(
                f"  {name:<{width}}  {s.examined:>9}  {s.repaired:>9}  {s.dropped:>9}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Sample-level rules (per-interval rates, inside the builder).
# ---------------------------------------------------------------------------

_Arrays = tuple[np.ndarray, np.ndarray, np.ndarray, "np.ndarray | None"]


def repair_wraps(
    rates: np.ndarray,
    counter_interval_s: float,
    report: SanitizationReport | None = None,
) -> np.ndarray:
    """Repair rates inflated by uncorrected uint32 counter wraps.

    A sample whose implied per-interval volume reaches 2^32 bytes is
    physically impossible for a 32-bit counter read — the client's wrap
    correction missed one (or more) wraps. Subtracting whole wrap quanta
    recovers the true rate exactly up to float rounding (the subtraction
    itself is exact by the Sterbenz lemma; the residual error is the
    rounding of the original corruption, below 1e-9 Mbps).
    """
    if counter_interval_s <= 0:
        raise DatasetError("counter interval must be positive")
    quantum = wrap_quantum_mbps(counter_interval_s)
    rates = np.asarray(rates, dtype=float)
    wrapped = rates >= quantum
    if not np.any(wrapped):
        return rates
    out = rates.copy()
    out[wrapped] -= np.floor(out[wrapped] / quantum) * quantum
    if report is not None:
        report.rule("counter_wrap").repaired += int(np.sum(wrapped))
    return out


def strip_sentinels(
    rates: np.ndarray,
    bt_active: np.ndarray,
    hours: np.ndarray,
    up_rates: np.ndarray | None,
    report: SanitizationReport | None = None,
) -> _Arrays:
    """Drop samples flagged unusable by the ``-1`` sentinel convention.

    This is the *only* stage that drops sentinel-flagged samples; the
    builder routes every fault-injected collection through it before any
    :func:`~repro.core.metrics.demand_summary` call.
    """
    bad = np.asarray(rates) < 0
    if up_rates is not None:
        bad = bad | (np.asarray(up_rates) < 0)
    if report is not None:
        report.rule("counter_reset").examined += int(bad.size)
    if not np.any(bad):
        return rates, bt_active, hours, up_rates
    keep = ~bad
    if report is not None:
        report.rule("counter_reset").dropped += int(np.sum(bad))
    return (
        rates[keep],
        bt_active[keep],
        hours[keep],
        None if up_rates is None else up_rates[keep],
    )


def dedup_samples(
    rates: np.ndarray,
    bt_active: np.ndarray,
    hours: np.ndarray,
    up_rates: np.ndarray | None,
    report: SanitizationReport | None = None,
) -> _Arrays:
    """Collapse runs of verbatim-repeated samples to their first copy.

    A genuine duplicate (double-fired read, upload retry) repeats rate
    *and* timestamp exactly; distinct samples always differ in
    timestamp, so the rule cannot eat real data. Run-collapsing makes
    the operation idempotent.
    """
    n = int(np.asarray(rates).size)
    if report is not None:
        report.rule("duplicate_sample").examined += n
    if n < 2:
        return rates, bt_active, hours, up_rates
    same = (
        (rates[1:] == rates[:-1])
        & (hours[1:] == hours[:-1])
        & (bt_active[1:] == bt_active[:-1])
    )
    if up_rates is not None:
        same = same & (up_rates[1:] == up_rates[:-1])
    if not np.any(same):
        return rates, bt_active, hours, up_rates
    keep = np.concatenate(([True], ~same))
    if report is not None:
        report.rule("duplicate_sample").dropped += int(np.sum(same))
    return (
        rates[keep],
        bt_active[keep],
        hours[keep],
        None if up_rates is None else up_rates[keep],
    )


def sanitize_samples(
    rates: np.ndarray,
    bt_active: np.ndarray,
    hours: np.ndarray,
    up_rates: np.ndarray | None,
    *,
    counter_interval_s: float | None = None,
    report: SanitizationReport | None = None,
) -> _Arrays:
    """Full sample-level pass: wrap repair, sentinel strip, dedup.

    ``counter_interval_s`` is the accounting interval of the source's
    *32-bit* counters; pass ``None`` for collectors without them (the
    FCC gateways), which disables wrap repair — an hourly record above
    the hourly wrap quantum is a legitimate fast line, not a wrap.

    The pass is idempotent: repaired rates sit below the wrap quantum,
    stripped arrays have no sentinels left, and run-collapsed arrays
    have no adjacent verbatim repeats.
    """
    if report is not None:
        report.samples_in += int(np.asarray(rates).size)
        report.rule("counter_wrap").examined += int(np.asarray(rates).size)
    if counter_interval_s is not None:
        rates = repair_wraps(rates, counter_interval_s, report)
    rates, bt_active, hours, up_rates = strip_sentinels(
        rates, bt_active, hours, up_rates, report
    )
    rates, bt_active, hours, up_rates = dedup_samples(
        rates, bt_active, hours, up_rates, report
    )
    if report is not None:
        report.samples_kept += int(np.asarray(rates).size)
    return rates, bt_active, hours, up_rates


# ---------------------------------------------------------------------------
# Record-level rules (assembled datasets, at ingest).
# ---------------------------------------------------------------------------


def _observed_days(user: UserRecord, dasu_interval_s: float) -> float:
    """Wall-clock days of usable collection across a user's periods."""
    per_sample_s = (
        dasu_interval_s if user.source == "dasu" else _GATEWAY_INTERVAL_S
    )
    samples = sum(o.n_usage_samples for o in user.observations)
    return samples * per_sample_s / _SECONDS_PER_DAY


def _period_is_valid(obs) -> bool:
    p = obs.period
    values = (
        p.capacity_mbps, p.mean_mbps, p.peak_mbps,
        p.mean_no_bt_mbps, p.peak_no_bt_mbps,
        obs.latency_ms, obs.loss_fraction, obs.capacity_up_mbps,
    )
    if any(not math.isfinite(v) for v in values):
        return False
    return (
        p.mean_mbps >= 0 and p.peak_mbps >= 0
        and p.mean_no_bt_mbps >= 0 and p.peak_no_bt_mbps >= 0
        and obs.capacity_up_mbps > 0
    )


def sanitize_users(
    users: Sequence[UserRecord],
    *,
    dasu_interval_s: float = 30.0,
    min_observed_days: float = MIN_OBSERVED_DAYS,
    min_ndt_tests: int = MIN_NDT_TESTS,
    report: SanitizationReport | None = None,
) -> tuple[list[UserRecord], SanitizationReport]:
    """Apply the paper's record-level cleaning rules to a dataset.

    Rules, in order, each accounted under its own name in the report:

    * ``duplicate_period`` — verbatim-repeated service periods (same
      network, same window) are collapsed to one;
    * ``ndt_failure`` — periods whose capacity estimate rests on fewer
      than ``min_ndt_tests`` surviving tests are excluded;
    * ``invalid_values`` — periods carrying non-finite or negative
      summary statistics are excluded (third-party data hardening);
    * ``short_observation`` — hosts with less than
      ``min_observed_days`` of total usable collection are excluded,
      as the paper filters to hosts with enough observed days.
    """
    if report is None:
        report = SanitizationReport()
    kept_users: list[UserRecord] = []
    report.users_in += len(users)
    for user in users:
        candidate = _sanitize_one(
            user,
            dasu_interval_s=dasu_interval_s,
            min_observed_days=min_observed_days,
            min_ndt_tests=min_ndt_tests,
            report=report,
        )
        if candidate is not None:
            kept_users.append(candidate)
    report.users_kept += len(kept_users)
    return kept_users, report


def _sanitize_one(
    user: UserRecord,
    *,
    dasu_interval_s: float,
    min_observed_days: float,
    min_ndt_tests: int,
    report: SanitizationReport,
) -> UserRecord | None:
    """Record-level rules for a single user; the accounting unit shared
    by the object-list and streaming columnar paths (every rule is
    strictly per-user, so the totals are identical for any batching)."""
    report.periods_in += len(user.observations)
    seen: set = set()
    kept = []
    for obs in user.observations:
        p = obs.period
        key = (p.network, p.start_day, p.end_day)
        rule = report.rule("duplicate_period")
        rule.examined += 1
        if key in seen:
            rule.dropped += 1
            continue
        seen.add(key)
        rule = report.rule("ndt_failure")
        rule.examined += 1
        if obs.n_ndt_tests < min_ndt_tests:
            rule.dropped += 1
            continue
        rule = report.rule("invalid_values")
        rule.examined += 1
        if not _period_is_valid(obs):
            rule.dropped += 1
            continue
        kept.append(obs)
    rule = report.rule("short_observation")
    rule.examined += 1
    if not kept:
        rule.dropped += 1
        return None
    candidate = (
        user
        if len(kept) == len(user.observations)
        else dataclasses.replace(user, observations=tuple(kept))
    )
    if _observed_days(candidate, dasu_interval_s) < min_observed_days:
        rule.dropped += 1
        return None
    report.periods_kept += len(kept)
    return candidate


#: Users re-columnized per batch while streaming the record-level rules.
_SANITIZE_BATCH_USERS = 1024


def sanitize_columns(
    columns,
    *,
    dasu_interval_s: float = 30.0,
    min_observed_days: float = MIN_OBSERVED_DAYS,
    min_ndt_tests: int = MIN_NDT_TESTS,
    report: SanitizationReport | None = None,
):
    """Record-level cleaning over a columnar dataset.

    Streams one user at a time through the same per-user rules as
    :func:`sanitize_users` (value-identical kept set, counter-identical
    report) while holding at most ``_SANITIZE_BATCH_USERS`` record
    objects in memory; survivors are re-columnized batch by batch in
    input order.
    """
    from .columns import UserColumns, records_to_rows

    if report is None:
        report = SanitizationReport()
    report.users_in += columns.n_users
    parts: list[np.ndarray] = []
    batch: list[UserRecord] = []
    n_kept = 0
    for user in columns.iter_records():
        candidate = _sanitize_one(
            user,
            dasu_interval_s=dasu_interval_s,
            min_observed_days=min_observed_days,
            min_ndt_tests=min_ndt_tests,
            report=report,
        )
        if candidate is None:
            continue
        n_kept += 1
        batch.append(candidate)
        if len(batch) >= _SANITIZE_BATCH_USERS:
            parts.append(records_to_rows(batch))
            batch = []
    if batch:
        parts.append(records_to_rows(batch))
    report.users_kept += n_kept
    return UserColumns.concat(parts), report


def ingest_users(
    path,
    *,
    dasu_interval_s: float = 30.0,
    min_observed_days: float = MIN_OBSERVED_DAYS,
    min_ndt_tests: int = MIN_NDT_TESTS,
) -> tuple[list[UserRecord], SanitizationReport]:
    """Hardened dataset ingest: lenient CSV read plus record sanitization.

    Unlike :func:`repro.datasets.io.read_users_csv` (which raises on the
    first malformed row), rows or users that fail to parse or validate
    are dropped and accounted under the ``malformed_row`` rule, then the
    surviving records go through :func:`sanitize_users`. This is the
    entry point for third-party datasets of unknown hygiene.
    """
    from .io import read_users_csv

    report = SanitizationReport()
    errors: list[str] = []
    users = read_users_csv(path, errors=errors)
    rule = report.rule("malformed_row")
    rule.examined += len(users) + len(errors)
    rule.dropped += len(errors)
    return sanitize_users(
        users,
        dasu_interval_s=dasu_interval_s,
        min_observed_days=min_observed_days,
        min_ndt_tests=min_ndt_tests,
        report=report,
    )
