"""Dataset assembly: the simulated equivalents of the paper's datasets.

* :mod:`repro.datasets.records` — analysis-ready record types (what a
  cleaned measurement dataset contains; no ground truth);
* :mod:`repro.datasets.world` — the world configuration and container;
* :mod:`repro.datasets.builder` — the end-to-end generator: markets,
  populations, traffic, measurement clients, record assembly;
* :mod:`repro.datasets.io` — CSV/JSON persistence for the generated
  datasets;
* :mod:`repro.datasets.sanitize` — the hardened ingest/cleaning stage
  (the paper's data-cleaning rules, with per-rule accounting);
* :mod:`repro.datasets.cache` — on-disk build cache keyed by
  configuration and code version.
"""

from .builder import build_world
from .cache import WorldCache, build_or_load_world, cache_key
from .records import PeriodObservation, UserRecord, period_year
from .sanitize import SanitizationReport, ingest_users, sanitize_users
from .traces import UsageTrace, read_traces_npz, write_traces_npz
from .world import DasuDataset, FccDataset, World, WorldConfig

__all__ = [
    "DasuDataset",
    "FccDataset",
    "PeriodObservation",
    "SanitizationReport",
    "UsageTrace",
    "UserRecord",
    "World",
    "WorldCache",
    "WorldConfig",
    "build_or_load_world",
    "build_world",
    "cache_key",
    "ingest_users",
    "period_year",
    "read_traces_npz",
    "sanitize_users",
    "write_traces_npz",
]
