"""Dataset assembly: the simulated equivalents of the paper's datasets.

* :mod:`repro.datasets.records` — analysis-ready record types (what a
  cleaned measurement dataset contains; no ground truth);
* :mod:`repro.datasets.world` — the world configuration and container;
* :mod:`repro.datasets.builder` — the end-to-end generator: markets,
  populations, traffic, measurement clients, record assembly;
* :mod:`repro.datasets.io` — CSV/JSON persistence for the generated
  datasets.
"""

from .builder import build_world
from .records import PeriodObservation, UserRecord, period_year
from .traces import UsageTrace, read_traces_npz, write_traces_npz
from .world import DasuDataset, FccDataset, World, WorldConfig

__all__ = [
    "DasuDataset",
    "FccDataset",
    "PeriodObservation",
    "UsageTrace",
    "UserRecord",
    "World",
    "WorldConfig",
    "build_world",
    "period_year",
    "read_traces_npz",
    "write_traces_npz",
]
