"""Dataset assembly: the simulated equivalents of the paper's datasets.

* :mod:`repro.datasets.records` — analysis-ready record types (what a
  cleaned measurement dataset contains; no ground truth);
* :mod:`repro.datasets.world` — the world configuration and container;
* :mod:`repro.datasets.builder` — the end-to-end generator: markets,
  populations, traffic, measurement clients, record assembly;
* :mod:`repro.datasets.columns` — the columnar data plane: user-period
  rows as a numpy structured array, the storage behind million-household
  worlds;
* :mod:`repro.datasets.io` — CSV/JSON/npy persistence for the generated
  datasets;
* :mod:`repro.datasets.sanitize` — the hardened ingest/cleaning stage
  (the paper's data-cleaning rules, with per-rule accounting);
* :mod:`repro.datasets.cache` — on-disk build cache keyed by
  configuration and code version;
* :mod:`repro.datasets.append` — incremental ingest: fold new
  households into a cached world without a full rebuild.
"""

from .append import AppendDelta, AppendResult, DeltaLog, append_world
from .builder import build_world
from .cache import WorldCache, build_or_load_world, cache_key
from .columns import (
    COLUMNS_FORMAT_VERSION,
    ROW_DTYPE,
    UserColumns,
    records_to_rows,
    rows_to_records,
)
from .records import PeriodObservation, UserRecord, period_year
from .sanitize import (
    SanitizationReport,
    ingest_users,
    sanitize_columns,
    sanitize_users,
)
from .traces import UsageTrace, read_traces_npz, write_traces_npz
from .world import DasuDataset, FccDataset, World, WorldConfig

__all__ = [
    "COLUMNS_FORMAT_VERSION",
    "ROW_DTYPE",
    "AppendDelta",
    "AppendResult",
    "DeltaLog",
    "UserColumns",
    "DasuDataset",
    "FccDataset",
    "PeriodObservation",
    "SanitizationReport",
    "UsageTrace",
    "UserRecord",
    "World",
    "WorldCache",
    "WorldConfig",
    "append_world",
    "build_or_load_world",
    "build_world",
    "cache_key",
    "ingest_users",
    "period_year",
    "read_traces_npz",
    "records_to_rows",
    "rows_to_records",
    "sanitize_columns",
    "sanitize_users",
    "write_traces_npz",
]
