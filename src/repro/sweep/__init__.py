"""Scenario sweeps: the paper's verdicts across many worlds.

A single synthetic world is one draw from the generative model; any
claim worth reporting should hold across draws *and* across plausible
market configurations. This package turns that into a first-class
workload: a declarative :class:`~repro.sweep.grid.ScenarioGrid`
(parameter overrides × fault severities) is crossed with replicate
seeds, every (scenario, seed) cell is built through the shared on-disk
world cache and fanned out over worker processes, and the chosen paper
experiments are evaluated per cell. The deliverable is a deterministic
cross-scenario **verdict-stability report** — for each experiment row,
the share of cells where the paper's verdict holds, with Wilson
intervals and per-cell headline statistics.

Exposed through the CLI as ``repro sweep``; the legacy
``analysis/sensitivity.py`` helpers are thin adapters over this engine.
"""

from .engine import CellResult, SweepResult, run_sweep, sweep_worlds
from .grid import Scenario, ScenarioGrid
from .report import (
    StabilityRow,
    format_sweep_report,
    stability_matrix,
    sweep_payload,
)
from .runners import SWEEP_EXPERIMENTS, VerdictRow, run_experiment

__all__ = [
    "CellResult",
    "SWEEP_EXPERIMENTS",
    "Scenario",
    "ScenarioGrid",
    "StabilityRow",
    "SweepResult",
    "VerdictRow",
    "format_sweep_report",
    "run_experiment",
    "run_sweep",
    "stability_matrix",
    "sweep_payload",
    "sweep_worlds",
]
