"""The cross-scenario verdict-stability report.

A sweep's deliverable is not any single cell but the *stability* of the
paper's verdicts across cells: for each experiment row, the share of
cells in which the verdict (statistically significant **and**
practically important) holds, with a Wilson interval over the cell
count, plus the spread of the underlying "% H holds" statistic. The
report is rendered with fixed-precision formatting in deterministic
order, so its bytes depend only on the sweep's inputs — never on
worker count, cache state, or scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.stats import ConfidenceInterval, wilson_interval
from .engine import SweepResult

__all__ = ["StabilityRow", "format_sweep_report", "stability_matrix", "sweep_payload"]


@dataclass(frozen=True)
class StabilityRow:
    """One experiment row's verdict stability across all sweep cells."""

    experiment: str
    row: str
    #: Cells in which the row was evaluated (worlds too small to produce
    #: the row at all are not counted against it).
    n_cells: int
    #: Cells whose verdict held (significant and practically important).
    n_holds: int
    #: Spread of the raw "% H holds" statistic across those cells.
    mean_fraction_holds: float
    min_fraction_holds: float
    max_fraction_holds: float

    @property
    def stability(self) -> float:
        return self.n_holds / self.n_cells

    @property
    def spread(self) -> float:
        return self.max_fraction_holds - self.min_fraction_holds

    def wilson(self) -> ConfidenceInterval:
        """95% Wilson interval on the verdict-holds share."""
        return wilson_interval(self.n_holds, self.n_cells)

    def to_payload(self) -> dict:
        ci = self.wilson()
        return {
            "experiment": self.experiment,
            "row": self.row,
            "n_cells": self.n_cells,
            "n_holds": self.n_holds,
            "stability": round(self.stability, 12),
            "stability_ci_low": round(ci.low, 12),
            "stability_ci_high": round(ci.high, 12),
            "mean_fraction_holds": round(self.mean_fraction_holds, 12),
            "min_fraction_holds": round(self.min_fraction_holds, 12),
            "max_fraction_holds": round(self.max_fraction_holds, 12),
        }


def stability_matrix(sweep: SweepResult) -> tuple[StabilityRow, ...]:
    """Aggregate every cell's verdicts into per-row stability records.

    Ordering is deterministic: experiments in the sweep's registry
    order, rows in order of first appearance across cells (cell order
    is itself scenario-major and fixed).
    """
    order: dict[tuple[str, str], int] = {}
    holds: dict[tuple[str, str], int] = {}
    fractions: dict[tuple[str, str], list[float]] = {}
    for cell in sweep.cells:
        for verdict in cell.verdicts:
            key = (verdict.experiment, verdict.row)
            if key not in order:
                order[key] = len(order)
                holds[key] = 0
                fractions[key] = []
            holds[key] += int(verdict.rejects_null)
            fractions[key].append(verdict.fraction_holds)
    experiment_rank = {name: i for i, name in enumerate(sweep.experiments)}
    keys = sorted(
        order, key=lambda k: (experiment_rank.get(k[0], len(experiment_rank)), order[k])
    )
    rows = []
    for key in keys:
        values = fractions[key]
        rows.append(
            StabilityRow(
                experiment=key[0],
                row=key[1],
                n_cells=len(values),
                n_holds=holds[key],
                mean_fraction_holds=sum(values) / len(values),
                min_fraction_holds=min(values),
                max_fraction_holds=max(values),
            )
        )
    return tuple(rows)


def _skip_summary(sweep: SweepResult) -> list[str]:
    skipped: dict[str, int] = {}
    for cell in sweep.cells:
        for key in cell.skipped:
            skipped[key] = skipped.get(key, 0) + 1
    return [
        f"  {key}: skipped in {n} of {len(sweep.cells)} cells"
        for key, n in sorted(skipped.items())
    ]


def format_sweep_report(sweep: SweepResult) -> str:
    """Render the full deterministic sweep report as text."""
    lines: list[str] = []
    out = lines.append
    out(f"scenario sweep: {sweep.grid.name}")
    out(
        f"scenarios ({len(sweep.grid.scenarios)}): "
        + ", ".join(sweep.scenario_names)
    )
    out(f"seeds ({len(sweep.seeds)}): " + ", ".join(str(s) for s in sweep.seeds))
    out(
        f"cells: {len(sweep.cells)}   experiments: "
        + ", ".join(sweep.experiments)
    )
    out("")
    out("verdict stability")
    out("  (share of cells where the verdict — significant and practically")
    out("   important — holds; CI is a 95% Wilson interval over cells)")
    out("")
    header = (
        f"  {'experiment row':<52} {'holds':>7}  {'share':>6}"
        f"  {'95% CI':>16}  {'%H mean':>8}  {'%H range':>14}"
    )
    out(header)
    for row in stability_matrix(sweep):
        ci = row.wilson()
        label = f"{row.experiment}/{row.row}"
        out(
            f"  {label:<52} {row.n_holds:>3}/{row.n_cells:<3}"
            f"  {row.stability:>6.3f}"
            f"  [{ci.low:.3f}, {ci.high:.3f}]"
            f"  {100 * row.mean_fraction_holds:>8.2f}"
            f"  {100 * row.min_fraction_holds:>6.2f}.."
            f"{100 * row.max_fraction_holds:<6.2f}"
        )
    out("")
    out("per-cell headlines")
    out(
        f"  {'scenario':<28} {'seed':>8} {'users':>7} {'med cap':>9}"
        f" {'med peak':>9} {'mean util':>10} {'mean iqb':>9} {'verdicts':>9}"
    )
    for cell in sweep.cells:
        cap = cell.headline_value("median_capacity_mbps")
        peak = cell.headline_value("median_peak_mbps")
        util = cell.headline_value("mean_peak_utilization")
        iqb = cell.headline_value("mean_iqb_score")
        out(
            f"  {cell.scenario:<28} {cell.seed:>8}"
            f" {cell.n_dasu_users:>7}"
            f" {'-' if cap is None else format(cap, '9.3f')}"
            f" {'-' if peak is None else format(peak, '9.3f')}"
            f" {'-' if util is None else format(util, '10.3f')}"
            f" {'-' if iqb is None else format(iqb, '9.3f')}"
            f" {cell.n_holds:>4}/{len(cell.verdicts):<4}"
        )
    skips = _skip_summary(sweep)
    if skips:
        out("")
        out("skipped experiments")
        lines.extend(skips)
    return "\n".join(line.rstrip() for line in lines)


def sweep_payload(sweep: SweepResult) -> dict:
    """JSON-ready payload of the whole sweep (``sweep.json``).

    Deterministic for any worker count and cache state: cache-hit
    accounting is deliberately excluded.
    """
    return {
        "grid": sweep.grid.to_payload(),
        "seeds": list(sweep.seeds),
        "experiments": list(sweep.experiments),
        "stability": [row.to_payload() for row in stability_matrix(sweep)],
        "cells": [cell.to_payload() for cell in sweep.cells],
    }
