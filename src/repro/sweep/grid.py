"""Declarative scenario grids.

A :class:`ScenarioGrid` names the worlds a sweep visits: each
:class:`Scenario` is a set of :class:`~repro.datasets.world.WorldConfig`
field overrides (plus an optional fault-severity profile and a
sanitization switch), and the grid crosses every scenario with every
replicate seed. Grids are plain data — they can be written as JSON
(``repro sweep --grid grid.json``), built in code, or expanded from
per-field ``axes`` whose cartesian product becomes the scenario list.

The seed is deliberately *not* an override: seeds are the replicate
axis of the sweep, supplied separately, so that every scenario is
evaluated under the same draws of the generative model and the
verdict-stability matrix compares like with like.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from ..analysis.iqb import resolve_iqb_config
from ..datasets.world import WorldConfig
from ..exceptions import AnalysisError, SweepError
from ..faults import FAULT_PROFILES, fault_profile

__all__ = ["Scenario", "ScenarioGrid"]

#: Knobs a scenario may not override: the seed is the replicate axis,
#: and faults/sanitize have dedicated scenario fields with validation.
_RESERVED_FIELDS = ("seed", "faults", "sanitize")

_CONFIG_FIELDS = frozenset(
    f.name for f in dataclasses.fields(WorldConfig)
) - set(_RESERVED_FIELDS)


def _check_overrides(name: str, overrides: Mapping[str, object]) -> None:
    for key in overrides:
        if key in _RESERVED_FIELDS:
            raise SweepError(
                f"scenario {name!r} overrides reserved field {key!r} "
                "(seeds are the sweep's replicate axis; use the "
                "'faults'/'sanitize' scenario fields instead)"
            )
        if key not in _CONFIG_FIELDS:
            raise SweepError(
                f"scenario {name!r} overrides unknown WorldConfig "
                f"field {key!r}"
            )


@dataclass(frozen=True)
class Scenario:
    """One named world variation: config overrides + fault settings."""

    name: str
    #: ``WorldConfig`` field overrides (any field except the reserved
    #: ``seed``/``faults``/``sanitize``).
    overrides: Mapping[str, object] = field(default_factory=dict)
    #: Fault-severity profile name (``"off"`` = pristine substrate,
    #: ``None`` = inherit the base configuration's fault settings).
    faults: str | None = None
    #: Run the sanitization stage (``None`` = inherit the base config).
    sanitize: bool | None = None
    #: IQB configuration the cell's ``iqb`` experiment scores with: a
    #: preset name, an inline config payload, or ``None`` (the default
    #: barometer config). Validated here, at grid-parse time, not when
    #: the cell eventually runs.
    iqb_config: "str | Mapping | None" = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SweepError("scenarios need a non-empty name")
        _check_overrides(self.name, self.overrides)
        if self.faults is not None and self.faults not in (
            "off", "none", *FAULT_PROFILES
        ):
            known = ", ".join(("off", *FAULT_PROFILES))
            raise SweepError(
                f"scenario {self.name!r}: unknown fault profile "
                f"{self.faults!r} (expected one of: {known})"
            )
        if self.iqb_config is not None:
            try:
                resolve_iqb_config(self.iqb_config)
            except AnalysisError as exc:
                raise SweepError(
                    f"scenario {self.name!r}: bad iqb_config: {exc}"
                ) from None
            if not isinstance(self.iqb_config, str):
                object.__setattr__(
                    self, "iqb_config", dict(self.iqb_config)
                )
        # Freeze the mapping so scenarios stay hashable-by-value safe.
        object.__setattr__(self, "overrides", dict(self.overrides))

    def apply(self, base: WorldConfig, seed: int) -> WorldConfig:
        """The world configuration of this scenario at one seed."""
        changes: dict = dict(self.overrides)
        changes["seed"] = int(seed)
        if self.faults is not None:
            changes["faults"] = fault_profile(self.faults)
        if self.sanitize is not None:
            changes["sanitize"] = bool(self.sanitize)
        try:
            return dataclasses.replace(base, **changes)
        except (TypeError, ValueError) as exc:
            raise SweepError(
                f"scenario {self.name!r} produced an invalid world "
                f"configuration: {exc}"
            ) from None

    def to_payload(self) -> dict:
        payload: dict = {"name": self.name}
        if self.overrides:
            payload["overrides"] = dict(self.overrides)
        if self.faults is not None:
            payload["faults"] = self.faults
        if self.sanitize is not None:
            payload["sanitize"] = self.sanitize
        if self.iqb_config is not None:
            payload["iqb_config"] = self.iqb_config
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping) -> "Scenario":
        if not isinstance(payload, Mapping):
            raise SweepError(f"scenario entries must be objects, got {payload!r}")
        unknown = set(payload) - {
            "name", "overrides", "faults", "sanitize", "iqb_config"
        }
        if unknown:
            raise SweepError(
                f"scenario has unknown keys: {', '.join(sorted(unknown))}"
            )
        try:
            name = payload["name"]
        except KeyError:
            raise SweepError("scenarios need a 'name'") from None
        return cls(
            name=str(name),
            overrides=dict(payload.get("overrides", {})),
            faults=payload.get("faults"),
            sanitize=payload.get("sanitize"),
            iqb_config=payload.get("iqb_config"),
        )


def _expand_axes(axes: Sequence[Mapping]) -> list[Scenario]:
    """Cartesian product of per-field value lists, as named scenarios.

    Each axis is ``{"field": <WorldConfig field or "faults">,
    "values": [...]}``; the product scenario ``f=a,g=b`` carries one
    override per axis. A ``faults`` axis sets the severity profile
    instead of an override, and an ``iqb_config`` axis sets the cell's
    barometer configuration (preset names or inline payloads).
    """
    if not axes:
        return []
    names: list[str] = []
    value_lists: list[list] = []
    for axis in axes:
        if not isinstance(axis, Mapping) or set(axis) != {"field", "values"}:
            raise SweepError(
                "each axis must be {'field': ..., 'values': [...]}, "
                f"got {axis!r}"
            )
        axis_field = str(axis["field"])
        values = list(axis["values"])
        if not values:
            raise SweepError(f"axis {axis_field!r} has no values")
        if (
            axis_field not in ("faults", "iqb_config")
            and axis_field not in _CONFIG_FIELDS
        ):
            raise SweepError(
                f"axis field {axis_field!r} is not a sweepable "
                "WorldConfig field"
            )
        names.append(axis_field)
        value_lists.append(values)

    def label_of(name: str, value: object) -> str:
        if name == "iqb_config" and isinstance(value, Mapping):
            return f"{name}={value.get('name', 'custom')}"
        return f"{name}={value}"

    scenarios = []
    for combo in itertools.product(*value_lists):
        label = ",".join(
            label_of(name, value) for name, value in zip(names, combo)
        )
        overrides = {
            name: value
            for name, value in zip(names, combo)
            if name not in ("faults", "iqb_config")
        }
        faults = None
        iqb_config = None
        for name, value in zip(names, combo):
            if name == "faults":
                faults = str(value)
            elif name == "iqb_config":
                iqb_config = value
        scenarios.append(
            Scenario(
                name=label,
                overrides=overrides,
                faults=faults,
                iqb_config=iqb_config,
            )
        )
    return scenarios


@dataclass(frozen=True)
class ScenarioGrid:
    """An ordered set of scenarios, optionally with grid-declared seeds."""

    scenarios: tuple[Scenario, ...]
    name: str = "sweep"
    #: Replicate seeds declared by the grid itself; the caller (CLI
    #: ``--seeds``) may override them.
    seeds: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise SweepError("a grid needs at least one scenario")
        seen: set[str] = set()
        for scenario in self.scenarios:
            if scenario.name in seen:
                raise SweepError(
                    f"duplicate scenario name {scenario.name!r}"
                )
            seen.add(scenario.name)
        object.__setattr__(
            self, "seeds", tuple(int(s) for s in self.seeds)
        )

    @classmethod
    def baseline(cls, name: str = "baseline") -> "ScenarioGrid":
        """A single-scenario grid: the base configuration, unmodified."""
        return cls(scenarios=(Scenario(name=name),), name="seeds-only")

    def configs(
        self, base: WorldConfig, seeds: Sequence[int]
    ) -> list[tuple[Scenario, int, WorldConfig]]:
        """Every (scenario, seed, config) cell, scenario-major order."""
        if not seeds:
            raise SweepError("a sweep needs at least one seed")
        return [
            (scenario, int(seed), scenario.apply(base, int(seed)))
            for scenario in self.scenarios
            for seed in seeds
        ]

    def to_payload(self) -> dict:
        payload: dict = {
            "name": self.name,
            "scenarios": [s.to_payload() for s in self.scenarios],
        }
        if self.seeds:
            payload["seeds"] = list(self.seeds)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ScenarioGrid":
        """Parse a grid payload (the ``grid.json`` schema).

        Supported keys: ``name``, ``scenarios`` (explicit list),
        ``axes`` (cartesian product, appended after any explicit
        scenarios), ``seeds``. At least one scenario must result.
        """
        if not isinstance(payload, Mapping):
            raise SweepError("a grid must be a JSON object")
        unknown = set(payload) - {"name", "scenarios", "axes", "seeds"}
        if unknown:
            raise SweepError(
                f"grid has unknown keys: {', '.join(sorted(unknown))}"
            )
        scenarios = [
            Scenario.from_payload(entry)
            for entry in payload.get("scenarios", [])
        ]
        scenarios.extend(_expand_axes(payload.get("axes", [])))
        if not scenarios:
            raise SweepError("grid declares no scenarios and no axes")
        try:
            seeds = tuple(int(s) for s in payload.get("seeds", ()))
        except (TypeError, ValueError) as exc:
            raise SweepError(f"bad grid seeds: {exc}") from None
        return cls(
            scenarios=tuple(scenarios),
            name=str(payload.get("name", "sweep")),
            seeds=seeds,
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "ScenarioGrid":
        """Load a grid from a ``grid.json`` file."""
        try:
            payload = json.loads(Path(path).read_text())
        except OSError as exc:
            raise SweepError(f"cannot read grid file {path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise SweepError(f"{path} is not valid JSON: {exc}") from None
        return cls.from_payload(payload)
