"""The sweep engine: many (scenario, seed) worlds, one report.

:func:`run_sweep` expands a :class:`~repro.sweep.grid.ScenarioGrid`
against a base :class:`~repro.datasets.world.WorldConfig` into cells —
one world per (scenario, replicate seed) — fans the cells out through
:func:`repro.core.executor.run_sharded`, and evaluates a chosen set of
paper experiments (:mod:`repro.sweep.runners`) in every cell.

Three properties carry over from the rest of the pipeline:

* **determinism** — cells are self-seeded and results return in cell
  order, so a sweep's report (and its ``--trace`` ledger) is
  byte-identical for any worker count;
* **cache sharing** — every cell goes through
  :func:`~repro.datasets.cache.build_or_load_world` against one shared
  on-disk world cache, so cells that share a configuration (and entire
  repeated sweeps) reuse persisted worlds instead of rebuilding;
* **hit/miss equivalence** — a cell's results, and its contribution to
  the merged run ledger, are identical whether its world was built
  fresh or loaded from the cache (the cache stores each build's trace).

:func:`sweep_worlds` exposes the same machinery at the world level for
callers that run their own statistics (``analysis/sensitivity.py`` is a
thin adapter over it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.executor import run_sharded
from ..datasets.cache import WorldCache, build_or_load_world
from ..datasets.world import World, WorldConfig
from ..exceptions import AnalysisError, SweepError
from ..obs.ledger import RunLedger, count, current, span
from .grid import Scenario, ScenarioGrid
from .runners import SWEEP_EXPERIMENTS, VerdictRow, run_experiment

__all__ = ["CellResult", "SweepResult", "run_sweep", "sweep_worlds"]


@dataclass(frozen=True)
class CellResult:
    """Everything one (scenario, seed) cell contributes to the report."""

    scenario: str
    seed: int
    n_dasu_users: int
    n_fcc_users: int
    #: Deterministic per-cell summary statistics, in fixed name order.
    headline: tuple[tuple[str, float], ...]
    verdicts: tuple[VerdictRow, ...]
    #: Experiments this cell's world could not support at all.
    skipped: tuple[str, ...]

    @property
    def n_holds(self) -> int:
        return sum(1 for v in self.verdicts if v.rejects_null)

    def headline_value(self, name: str) -> float | None:
        for key, value in self.headline:
            if key == name:
                return value
        return None

    def to_payload(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "n_dasu_users": self.n_dasu_users,
            "n_fcc_users": self.n_fcc_users,
            "headline": {k: round(v, 12) for k, v in self.headline},
            "verdicts": [v.to_payload() for v in self.verdicts],
            "skipped": list(self.skipped),
        }


@dataclass(frozen=True)
class SweepResult:
    """A completed sweep: the grid, its cells, and cache accounting."""

    grid: ScenarioGrid
    base_config: WorldConfig
    seeds: tuple[int, ...]
    experiments: tuple[str, ...]
    cells: tuple[CellResult, ...]
    #: How many cells loaded their world from the cache. Scheduling- and
    #: cache-state-dependent, so excluded from comparisons, payloads,
    #: and the report — a warm rerun must stay byte-identical.
    n_cache_hits: int = field(default=0, compare=False)

    @property
    def scenario_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.grid.scenarios)

    def cells_for(self, scenario: str) -> tuple[CellResult, ...]:
        return tuple(c for c in self.cells if c.scenario == scenario)

    def fractions_for(self, experiment: str, row: str) -> tuple[float, ...]:
        """Every cell's '% H holds' for one experiment row, cell order."""
        return tuple(
            v.fraction_holds
            for cell in self.cells
            for v in cell.verdicts
            if v.experiment == experiment and v.row == row
        )


@dataclass(frozen=True)
class _CellTask:
    """Self-contained description of one cell, picklable for workers."""

    scenario: str
    seed: int
    config: WorldConfig
    experiments: tuple[str, ...]
    cache_root: str | None
    use_cache: bool
    #: The scenario's IQB configuration (preset name, payload, or None).
    iqb_config: object = None


def _cell_world(
    config: WorldConfig, cache_root: str | None, use_cache: bool
) -> tuple[World, bool]:
    """Build or load one cell's world, folding its build trace into the
    ambient ledger (identical bytes whether the world was cached)."""
    world, from_cache = build_or_load_world(
        config,
        jobs=1,
        cache=WorldCache(cache_root),
        use_cache=use_cache,
        ground_truth=False,
    )
    ambient = current()
    if ambient is not None and world.ledger is not None:
        ambient.merge(world.ledger)
    return world, from_cache


def _headline(
    world: World, iqb_config: object = None
) -> tuple[tuple[str, float], ...]:
    """Fixed-order summary statistics of a cell's Dasu panel.

    The reductions are applied to sorted values: a cache-loaded world
    carries the same user records as a fresh build but in a different
    order, and float summation is order-sensitive at the ULP level —
    sorting first keeps hit and miss cells exactly equal.
    """
    from ..analysis.iqb import resolve_iqb_config, score_columns

    users = world.dasu.users
    if not users:
        return ()
    capacity = np.sort([u.capacity_down_mbps for u in users])
    peak = np.sort([u.demand("peak", False) for u in users])
    utilization = np.sort([u.peak_utilization for u in users])
    composite = np.sort(
        score_columns(
            world.dasu.columns, resolve_iqb_config(iqb_config)
        ).composite
    )
    return (
        ("median_capacity_mbps", float(np.median(capacity))),
        ("median_peak_mbps", float(np.median(peak))),
        ("mean_peak_utilization", float(utilization.mean())),
        ("mean_iqb_score", float(composite.mean())),
    )


def _run_cell(task: _CellTask) -> tuple[CellResult, bool]:
    world, from_cache = _cell_world(
        task.config, task.cache_root, task.use_cache
    )
    verdicts: list[VerdictRow] = []
    skipped: list[str] = []
    with span(f"sweep/cell/{task.scenario}/seed={task.seed}"):
        for key in task.experiments:
            try:
                rows = run_experiment(
                    key, world.dasu.users, iqb_config=task.iqb_config
                )
            except AnalysisError:
                skipped.append(key)
                count(f"sweep.skipped.{key}")
                continue
            verdicts.extend(rows)
            count(f"sweep.verdicts.{key}.rows", len(rows))
            count(
                f"sweep.verdicts.{key}.holds",
                sum(1 for v in rows if v.rejects_null),
            )
    count("sweep.cells")
    result = CellResult(
        scenario=task.scenario,
        seed=task.seed,
        n_dasu_users=len(world.dasu.users),
        n_fcc_users=len(world.fcc.users),
        headline=_headline(world, task.iqb_config),
        verdicts=tuple(verdicts),
        skipped=tuple(skipped),
    )
    return result, from_cache


def _resolve_seeds(
    grid: ScenarioGrid, seeds: Sequence[int] | None
) -> tuple[int, ...]:
    chosen = tuple(int(s) for s in seeds) if seeds is not None else grid.seeds
    if not chosen:
        raise SweepError(
            "a sweep needs at least one seed (pass seeds= or declare "
            "them in the grid)"
        )
    if len(set(chosen)) != len(chosen):
        raise SweepError(f"sweep seeds must be distinct, got {chosen}")
    return chosen


def run_sweep(
    base_config: WorldConfig,
    grid: ScenarioGrid,
    seeds: Sequence[int] | None = None,
    *,
    experiments: Sequence[str] = SWEEP_EXPERIMENTS,
    jobs: int | None = 1,
    cache_root: str | Path | None = None,
    use_cache: bool = True,
    ledger: RunLedger | None = None,
) -> SweepResult:
    """Evaluate ``experiments`` over every (scenario, seed) cell.

    Cells run through :func:`~repro.core.executor.run_sharded` with
    ``jobs`` workers; results (and the merged ``ledger``, if one is
    passed) are byte-identical for any worker count. Worlds are shared
    through the on-disk cache under ``cache_root`` (default resolution
    as in :func:`~repro.datasets.cache.default_cache_root`), so
    repeating a sweep — or overlapping cells inside one — reuses
    persisted worlds.
    """
    experiments = tuple(experiments)
    if not experiments:
        raise SweepError("a sweep needs at least one experiment")
    for key in experiments:
        if key not in SWEEP_EXPERIMENTS:
            known = ", ".join(SWEEP_EXPERIMENTS)
            raise SweepError(
                f"unknown sweep experiment {key!r} "
                f"(expected one of: {known})"
            )
    chosen_seeds = _resolve_seeds(grid, seeds)
    root = None if cache_root is None else str(cache_root)
    # The fan-out rides the experiment-DAG scheduler: one sweep-cell
    # stage per (scenario, seed), declared in scenario-major order so
    # execution and ledger-merge order match the pre-DAG engine exactly.
    # The pool backend shards through run_sharded as before, so results
    # and the merged ledger stay byte-identical for any worker count.
    # Lazy import: repro.dag's pipeline kinds call back into this module.
    from ..dag import ProcessPoolBackend, RunContext, run_dag, sweep_spec

    spec = sweep_spec(
        base_config, grid, chosen_seeds, experiments, with_report=False
    )
    run = run_dag(
        spec,
        backend=ProcessPoolBackend(jobs=jobs),
        ledger=ledger,
        context=RunContext(jobs=1, cache_root=root, use_cache=use_cache),
    )
    outcomes = [run.artifacts[stage.name] for stage in spec.stages]
    results = tuple(outcome.result for outcome in outcomes)
    hits = sum(1 for outcome in outcomes if outcome.from_cache)
    return SweepResult(
        grid=grid,
        base_config=base_config,
        seeds=chosen_seeds,
        experiments=experiments,
        cells=results,
        n_cache_hits=hits,
    )


@dataclass(frozen=True)
class _WorldTask:
    """One world to materialize (the world-level sweep primitive)."""

    config: WorldConfig
    cache_root: str | None
    use_cache: bool


def _world_worker(task: _WorldTask) -> World:
    world, _ = _cell_world(task.config, task.cache_root, task.use_cache)
    return world


def sweep_worlds(
    base_config: WorldConfig,
    seeds: Sequence[int],
    *,
    jobs: int | None = 1,
    cache_root: str | Path | None = None,
    use_cache: bool = True,
    ledger: RunLedger | None = None,
) -> list[World]:
    """One world per seed (``base_config`` with the seed replaced), in
    seed order, built through the shared world cache.

    This is the world-level sweep primitive behind
    :func:`repro.analysis.sensitivity.seed_sweep`: callers apply their
    own statistics to the returned worlds.
    """
    if not seeds:
        raise SweepError("a sweep needs at least one seed")
    scenario = Scenario(name="baseline")
    root = None if cache_root is None else str(cache_root)
    tasks = [
        _WorldTask(
            config=scenario.apply(base_config, int(seed)),
            cache_root=root,
            use_cache=use_cache,
        )
        for seed in seeds
    ]
    return run_sharded(_world_worker, tasks, jobs=jobs, ledger=ledger)
