"""The experiments a sweep can evaluate in every cell.

Each runner takes a built world's Dasu users and returns the natural
experiments of one paper table as :class:`VerdictRow` records — the
verdict (significant *and* practically important, the paper's bar) plus
the raw "% H holds" behind it. The registry is an ordered mapping so a
sweep's report always lists experiments in the paper's table order.

Rows with zero matched pairs are dropped: they carry no verdict
evidence and would only add ``NaN`` noise to the stability matrix.
Runners raise :class:`~repro.exceptions.AnalysisError` when a world is
too small for an experiment at all; the engine records such cells as
having skipped that experiment rather than failing the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..analysis import capacity, iqb, price, quality, upgrade_cost
from ..core.experiments import ExperimentResult
from ..datasets.records import UserRecord
from ..exceptions import SweepError

__all__ = ["SWEEP_EXPERIMENTS", "VerdictRow", "run_experiment"]


@dataclass(frozen=True)
class VerdictRow:
    """One experiment row's verdict in one sweep cell."""

    experiment: str
    row: str
    fraction_holds: float
    n_pairs: int
    p_value: float
    significant: bool
    rejects_null: bool

    def to_payload(self) -> dict:
        return {
            "experiment": self.experiment,
            "row": self.row,
            "fraction_holds": round(self.fraction_holds, 12),
            "n_pairs": self.n_pairs,
            "p_value": round(self.p_value, 12),
            "significant": self.significant,
            "rejects_null": self.rejects_null,
        }


def _verdict(experiment: str, row: str, result: ExperimentResult) -> VerdictRow:
    return VerdictRow(
        experiment=experiment,
        row=row,
        fraction_holds=float(result.fraction_holds),
        n_pairs=int(result.n_pairs),
        p_value=float(result.p_value),
        significant=bool(result.statistically_significant),
        rejects_null=bool(result.rejects_null),
    )


def _rows(
    experiment: str, labeled: Sequence[tuple[str, ExperimentResult]]
) -> list[VerdictRow]:
    return [
        _verdict(experiment, label, result)
        for label, result in labeled
        if result.n_pairs > 0
    ]


def _run_table1(users: Sequence[UserRecord]) -> list[VerdictRow]:
    result = capacity.table1(users)
    return _rows(
        "table1",
        [(label, res) for label, _, res in result.rows()],
    )


def _run_table2(users: Sequence[UserRecord]) -> list[VerdictRow]:
    result = capacity.table2(users, "dasu")
    return _rows(
        "table2",
        [
            (f"{row.control_bin.label()} vs next", row.experiment.result)
            for row in result.rows
        ],
    )


def _run_table3(users: Sequence[UserRecord]) -> list[VerdictRow]:
    result = price.table3(users)
    return _rows(
        "table3",
        [(label, res.result) for label, _, res in result.rows()],
    )


def _run_table6(users: Sequence[UserRecord]) -> list[VerdictRow]:
    labeled = []
    for include_bt in (True, False):
        result = upgrade_cost.table6(users, include_bt=include_bt)
        tag = "w/ BT" if include_bt else "no BT"
        labeled.extend(
            (f"{label} ({tag})", res.result)
            for label, _, res in result.rows()
        )
    return _rows("table6", labeled)


def _run_table7(users: Sequence[UserRecord]) -> list[VerdictRow]:
    result = quality.table7(users)
    return _rows(
        "table7",
        [
            (f"vs {row.treatment_bin.label('ms')}", row.experiment.result)
            for row in result.rows
        ],
    )


def _run_table8(users: Sequence[UserRecord]) -> list[VerdictRow]:
    result = quality.table8(users)
    return _rows(
        "table8",
        [
            (row.experiment.result.name, row.experiment.result)
            for row in result.rows
        ],
    )


def _run_iqb(
    users: Sequence[UserRecord], iqb_config=None
) -> list[VerdictRow]:
    result = iqb.iqb_experiment(users, iqb_config)
    # The row label stays constant across configs — the config identity
    # lives in the scenario name, so a grid with an iqb_config axis
    # lines its cells up in one stability-matrix row.
    return _rows(
        "iqb",
        [("top vs bottom tercile", result.experiment.result)],
    )


_RUNNERS: dict[str, Callable[..., list[VerdictRow]]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "table6": _run_table6,
    "table7": _run_table7,
    "table8": _run_table8,
    "iqb": _run_iqb,
}

#: Every sweep-runnable experiment, in the paper's table order.
SWEEP_EXPERIMENTS: tuple[str, ...] = tuple(_RUNNERS)


def run_experiment(
    key: str, users: Sequence[UserRecord], iqb_config=None
) -> list[VerdictRow]:
    """Run one registered experiment over a cell's Dasu users.

    ``iqb_config`` (a preset name, config payload, or ``None``) only
    affects the ``iqb`` experiment — the paper-table runners ignore it.
    Raises :class:`~repro.exceptions.AnalysisError` (bubbled from the
    analysis layer) when the world cannot support the experiment.
    """
    try:
        runner = _RUNNERS[key]
    except KeyError:
        known = ", ".join(SWEEP_EXPERIMENTS)
        raise SweepError(
            f"unknown sweep experiment {key!r} (expected one of: {known})"
        ) from None
    if key == "iqb":
        return runner(users, iqb_config)
    return runner(users)
