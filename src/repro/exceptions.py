"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class UnitError(ReproError, ValueError):
    """An invalid quantity was supplied (negative rate, zero interval, ...)."""


class BinningError(ReproError, ValueError):
    """A value could not be assigned to a bin, or a bin spec is invalid."""


class MatchingError(ReproError, ValueError):
    """Matching could not be performed (bad caliper, missing confounders)."""


class ExperimentError(ReproError, ValueError):
    """A natural experiment was configured or executed incorrectly."""


class MarketError(ReproError, ValueError):
    """A broadband market or plan definition is inconsistent."""


class MeasurementError(ReproError, RuntimeError):
    """A simulated measurement client hit an unrecoverable condition."""


class DatasetError(ReproError, ValueError):
    """A dataset could not be built, loaded, or validated."""


class AnalysisError(ReproError, ValueError):
    """An analysis routine received data it cannot work with."""


class LedgerError(ReproError, ValueError):
    """A run-ledger event or merge was invalid (see :mod:`repro.obs`)."""


class SweepError(ReproError, ValueError):
    """A scenario grid or sweep run was invalid (see :mod:`repro.sweep`)."""


class DagError(ReproError, ValueError):
    """An experiment DAG spec or run was invalid (see :mod:`repro.dag`)."""
