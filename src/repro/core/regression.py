"""Per-market price~capacity regression (Sec. 6 of the paper).

For every country market the paper fits ordinary least squares of monthly
price (USD PPP) against download capacity (Mbps) over the market's retail
plans. When price and capacity are at least moderately correlated
(``r > 0.4``) the slope of the fit estimates the *cost of increasing
capacity by 1 Mbps* in that market.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import AnalysisError
from .stats import pearson_r

__all__ = [
    "MODERATE_CORRELATION",
    "STRONG_CORRELATION",
    "MarketRegression",
    "fit_price_capacity",
]

#: Correlation thresholds the paper uses to qualify markets.
MODERATE_CORRELATION = 0.4
STRONG_CORRELATION = 0.8


@dataclass(frozen=True)
class MarketRegression:
    """OLS fit of plan price against plan capacity for one market."""

    slope_usd_per_mbps: float
    intercept_usd: float
    correlation: float
    n_plans: int

    @property
    def moderately_correlated(self) -> bool:
        """Whether the slope is usable as a cost-of-upgrade estimate."""
        return self.correlation > MODERATE_CORRELATION

    @property
    def strongly_correlated(self) -> bool:
        return self.correlation > STRONG_CORRELATION

    def predicted_price(self, capacity_mbps: float) -> float:
        """Price the fit predicts for a plan of the given capacity."""
        return self.intercept_usd + self.slope_usd_per_mbps * capacity_mbps


def fit_price_capacity(
    capacities_mbps: Sequence[float],
    prices_usd: Sequence[float],
) -> MarketRegression:
    """Fit OLS ``price = intercept + slope * capacity`` for one market.

    Requires at least two plans with distinct capacities; markets with a
    single plan carry no upgrade-cost information and must be skipped by
    the caller.
    """
    x = np.asarray(capacities_mbps, dtype=float)
    y = np.asarray(prices_usd, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise AnalysisError("capacities and prices must be equal-length 1-D")
    if x.size < 2:
        raise AnalysisError("a market regression needs at least two plans")
    if np.ptp(x) == 0.0:
        raise AnalysisError("all plans have the same capacity; slope undefined")
    xd = x - x.mean()
    slope = float((xd @ (y - y.mean())) / (xd @ xd))
    intercept = float(y.mean() - slope * x.mean())
    r = pearson_r(x, y)
    return MarketRegression(
        slope_usd_per_mbps=slope,
        intercept_usd=intercept,
        correlation=r,
        n_plans=int(x.size),
    )
