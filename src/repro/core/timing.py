"""Per-stage wall/CPU timing for the analysis engine.

Every analysis fragment of the report runs under a :class:`StageTimer`
stage, whether it executes in the parent process or on a worker of the
process pool. A :class:`StageTiming` is measured *inside* whichever
process ran the stage, so its CPU time is the stage's own work, not the
parent's idle wait. Timings are plain frozen dataclasses and therefore
picklable — workers return them alongside their results.

``repro report --profile`` renders the collected timings with
:func:`format_profile`; the format is documented in
``docs/METHODOLOGY.md``. The timing layer is the span substrate of the
run ledger (:mod:`repro.obs`): :meth:`repro.obs.ledger.RunLedger.stage_timings`
projects ledger spans back onto :class:`StageTiming` rows, so the
profile table is a view over the ledger.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["StageTimer", "StageTiming", "format_profile", "measure_stage"]


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock and CPU seconds one named stage took."""

    name: str
    wall_s: float
    cpu_s: float


class StageTimer:
    """Collects :class:`StageTiming` records, in completion order.

    Use :meth:`stage` around the work being measured, or :meth:`add` to
    merge a timing measured elsewhere (e.g. returned by a pool worker).
    """

    def __init__(self) -> None:
        self._timings: list[StageTiming] = []

    @property
    def timings(self) -> tuple[StageTiming, ...]:
        return tuple(self._timings)

    def add(self, timing: StageTiming) -> None:
        self._timings.append(timing)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            self.add(
                StageTiming(
                    name=name,
                    wall_s=time.perf_counter() - wall0,
                    cpu_s=time.process_time() - cpu0,
                )
            )

    @property
    def total_wall_s(self) -> float:
        """Sum of per-stage wall seconds (CPU-seconds of work done;
        under a process pool this exceeds the elapsed wall time)."""
        return sum(t.wall_s for t in self._timings)

    @property
    def total_cpu_s(self) -> float:
        return sum(t.cpu_s for t in self._timings)


def measure_stage(name: str, func, *args, **kwargs):
    """Run ``func`` and return ``(result, StageTiming)``.

    The function-call twin of :meth:`StageTimer.stage`, for workers that
    must ship the timing back instead of recording it locally.
    """
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    result = func(*args, **kwargs)
    timing = StageTiming(
        name=name,
        wall_s=time.perf_counter() - wall0,
        cpu_s=time.process_time() - cpu0,
    )
    return result, timing


def format_profile(
    timings: Sequence[StageTiming], title: str = "analysis profile"
) -> str:
    """Render timings as an aligned table, one row per stage name.

    One row per stage — ``stage  wall(s)  cpu(s)`` — followed by a total
    row summing both columns. Rows are sorted by stage *name*, never by
    duration: durations vary run to run and (under a process pool) with
    scheduling, so a duration sort would shuffle the table across
    ``--jobs`` values. With the timing columns masked, profiles of the
    same run are byte-identical for any worker count. Stage wall
    seconds are measured inside the process that ran the stage, so
    under ``--jobs N`` the total can exceed the elapsed time (it is the
    amount of work done, not the time you waited).
    """
    lines = [title]
    width = max([len(t.name) for t in timings], default=4)
    for t in sorted(timings, key=lambda t: (t.name, t.wall_s, t.cpu_s)):
        lines.append(f"  {t.name:<{width}}  wall {t.wall_s:8.3f} s  cpu {t.cpu_s:8.3f} s")
    total_wall = sum(t.wall_s for t in timings)
    total_cpu = sum(t.cpu_s for t in timings)
    lines.append(
        f"  {'total':<{width}}  wall {total_wall:8.3f} s  cpu {total_cpu:8.3f} s"
    )
    return "\n".join(lines)
