"""Demand metrics: mean and peak usage, and link utilization.

The paper describes user demand with two statistics over the time series of
downlink throughput samples (one sample per ~30 s for Dasu, hourly for the
FCC gateways): the **mean** and the **peak**, defined as the 95th percentile
(Sec. 3.1). Utilization is demand divided by measured link capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import AnalysisError
from .stats import percentile

__all__ = ["PEAK_PERCENTILE", "DemandSummary", "demand_summary", "peak_demand", "utilization"]

#: The percentile the paper uses for "peak" demand.
PEAK_PERCENTILE = 95.0


@dataclass(frozen=True)
class DemandSummary:
    """Mean/peak demand (Mbps) summarized from a usage time series."""

    mean_mbps: float
    peak_mbps: float
    n_samples: int

    def utilization(self, capacity_mbps: float) -> "UtilizationSummary":
        """Mean and peak utilization of a link of the given capacity."""
        return UtilizationSummary(
            mean=utilization(self.mean_mbps, capacity_mbps),
            peak=utilization(self.peak_mbps, capacity_mbps),
        )


@dataclass(frozen=True)
class UtilizationSummary:
    """Fractions of a link's capacity consumed on average and at peak."""

    mean: float
    peak: float


def demand_summary(rates_mbps: Sequence[float] | np.ndarray) -> DemandSummary:
    """Summarize a series of throughput samples into mean/peak demand.

    ``rates_mbps`` is the per-interval downlink (or uplink) rate series.
    Raises :class:`~repro.exceptions.AnalysisError` on an empty series: a
    user with no samples has no demand estimate and must be excluded
    upstream, not silently zeroed.
    """
    arr = np.asarray(rates_mbps, dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot summarize an empty usage series")
    if np.any(arr < 0):
        raise AnalysisError("negative throughput samples indicate a counter bug")
    return DemandSummary(
        mean_mbps=float(arr.mean()),
        peak_mbps=percentile(arr, PEAK_PERCENTILE),
        n_samples=int(arr.size),
    )


def peak_demand(rates_mbps: Sequence[float] | np.ndarray) -> float:
    """The paper's peak demand: the 95th percentile of the rate series."""
    return demand_summary(rates_mbps).peak_mbps


def utilization(demand_mbps: float, capacity_mbps: float) -> float:
    """Fraction of the link consumed by ``demand_mbps``, clipped to [0, 1].

    Measured demand can transiently exceed measured capacity (both are
    noisy); the paper plots utilization on [0, 1], so we clip.
    """
    if capacity_mbps <= 0:
        raise AnalysisError(f"capacity must be positive, got {capacity_mbps}")
    if demand_mbps < 0:
        raise AnalysisError(f"demand must be non-negative, got {demand_mbps}")
    return min(1.0, demand_mbps / capacity_mbps)
