"""Quasi-experimental design (QED), the alternative the paper discusses.

Sec. 8 of the paper contrasts its natural experiments with the
quasi-experimental designs of Krishnan & Sitaraman (IMC'12) and Oktay et
al. In the K&S formulation, treated and untreated units are paired
within identical covariate *strata*, each pair contributes a signed
outcome comparison, and the **net outcome score** — the mean of the pair
signs — estimates the treatment effect, with significance from the same
sign-test machinery.

This module implements that design so the two estimators can be compared
on identical data (see ``benchmarks/test_extensions.py``): QED's
exact-stratum matching is stricter than caliper matching, trading pair
volume for cleaner comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

from ..exceptions import ExperimentError
from .stats import binomial_test_greater

__all__ = ["QedResult", "QuasiExperiment", "stratum_key"]

T = TypeVar("T")


def stratum_key(
    unit: T,
    confounders: Sequence[Callable[[T], float]],
    bins_per_decade: int = 3,
) -> tuple[int, ...]:
    """Discretize a unit's confounders into a stratum identifier.

    Each confounder is binned geometrically (``bins_per_decade`` bins per
    factor of ten), so two units share a stratum only when *every*
    confounder falls in the same narrow band — the QED notion of
    "identical" covariates.
    """
    if bins_per_decade < 1:
        raise ExperimentError("bins_per_decade must be positive")
    key = []
    for extract in confounders:
        value = float(extract(unit))
        if math.isnan(value) or value < 0:
            raise ExperimentError(f"invalid confounder value {value!r}")
        floored = max(value, 1e-6)
        key.append(int(math.floor(math.log10(floored) * bins_per_decade)))
    return tuple(key)


@dataclass(frozen=True)
class QedResult:
    """Outcome of a quasi-experimental comparison."""

    name: str
    n_pairs: int
    n_positive: int
    n_negative: int
    n_ties: int
    net_outcome_score: float
    p_value: float

    @property
    def fraction_positive(self) -> float:
        decisive = self.n_positive + self.n_negative
        if decisive == 0:
            return float("nan")
        return self.n_positive / decisive

    @property
    def significant(self) -> bool:
        return self.n_pairs > 0 and self.p_value < 0.05


class QuasiExperiment:
    """Stratified pairing plus the net-outcome-score sign test.

    Parameters
    ----------
    name:
        Identifier for reports.
    confounders:
        Callables extracting one non-negative float per unit.
    bins_per_decade:
        Stratum resolution; higher is stricter (fewer, cleaner pairs).
    """

    def __init__(
        self,
        name: str,
        confounders: Sequence[Callable[[T], float]],
        bins_per_decade: int = 3,
    ) -> None:
        if not confounders:
            raise ExperimentError("QED needs at least one confounder")
        self.name = name
        self.confounders = list(confounders)
        self.bins_per_decade = bins_per_decade

    def _strata(self, units: Sequence[T]) -> dict[tuple[int, ...], list[T]]:
        strata: dict[tuple[int, ...], list[T]] = {}
        for unit in units:
            key = stratum_key(unit, self.confounders, self.bins_per_decade)
            strata.setdefault(key, []).append(unit)
        return strata

    def run(
        self,
        control: Sequence[T],
        treatment: Sequence[T],
        outcome: Callable[[T], float],
        rng: np.random.Generator | None = None,
    ) -> QedResult:
        """Pair within strata and compute the net outcome score.

        Within each stratum, controls and treatments are paired one to
        one (in shuffled order when ``rng`` is given, insertion order
        otherwise); surplus units on either side go unmatched. Each pair
        contributes ``sign(outcome(treated) - outcome(control))``.
        """
        control_strata = self._strata(control)
        treatment_strata = self._strata(treatment)

        positive = negative = ties = 0
        for key, treated_units in treatment_strata.items():
            control_units = control_strata.get(key)
            if not control_units:
                continue
            treated = list(treated_units)
            controls = list(control_units)
            if rng is not None:
                rng.shuffle(treated)
                rng.shuffle(controls)
            for t_unit, c_unit in zip(treated, controls):
                delta = outcome(t_unit) - outcome(c_unit)
                if delta > 0:
                    positive += 1
                elif delta < 0:
                    negative += 1
                else:
                    ties += 1

        n_pairs = positive + negative
        test = binomial_test_greater(positive, n_pairs)
        score = 0.0 if n_pairs == 0 else (positive - negative) / n_pairs
        return QedResult(
            name=self.name,
            n_pairs=n_pairs,
            n_positive=positive,
            n_negative=negative,
            n_ties=ties,
            net_outcome_score=score,
            p_value=test.p_value,
        )
