"""The natural-experiment study design (Sec. 2.3 of the paper).

A *natural experiment* here is a sign test over matched pairs: each pair
contributes one Bernoulli observation — whether the "treated" unit's outcome
exceeds the "control" unit's outcome. If neither variable affects the other,
treated beats control about 50% of the time; significant deviations suggest
a causal relationship.

Two safeguards from the paper are built in:

* significance is assessed with a **one-tailed exact binomial test** at
  ``alpha = 0.05``;
* because with enough pairs even a trivially biased coin looks significant
  (the Paxson critique), deviations must additionally exceed a **practical
  margin of 2%** — the hypothesis must hold at least 52% of the time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..exceptions import ExperimentError
from .stats import BinomialTestResult, binomial_test_greater

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_PRACTICAL_MARGIN",
    "ExperimentResult",
    "NaturalExperiment",
    "PairedOutcome",
]

DEFAULT_ALPHA = 0.05
DEFAULT_PRACTICAL_MARGIN = 0.02


@dataclass(frozen=True)
class PairedOutcome:
    """Outcome values of one matched (control, treatment) pair."""

    control_value: float
    treatment_value: float

    @property
    def hypothesis_holds(self) -> bool:
        """True when the treated unit's outcome strictly exceeds control's."""
        return self.treatment_value > self.control_value

    @property
    def is_tie(self) -> bool:
        return self.treatment_value == self.control_value


@dataclass(frozen=True)
class ExperimentResult:
    """The outcome of one natural experiment, as the paper tabulates it."""

    name: str
    n_pairs: int
    n_holds: int
    n_ties: int
    p_value: float
    alpha: float
    practical_margin: float

    @property
    def fraction_holds(self) -> float:
        """'% H holds' — fraction of non-tied pairs supporting H."""
        if self.n_pairs == 0:
            return float("nan")
        return self.n_holds / self.n_pairs

    @property
    def statistically_significant(self) -> bool:
        return self.n_pairs > 0 and self.p_value < self.alpha

    @property
    def practically_important(self) -> bool:
        """Whether the deviation clears the 2% practical-importance margin."""
        return (
            self.n_pairs > 0
            and self.fraction_holds >= 0.5 + self.practical_margin
        )

    @property
    def rejects_null(self) -> bool:
        """The paper's overall verdict: significant *and* practically important."""
        return self.statistically_significant and self.practically_important

    def row(self) -> str:
        """One table row in the paper's format (asterisk = not significant)."""
        star = "" if self.statistically_significant else "*"
        return (
            f"{self.name}: {100 * self.fraction_holds:.1f}%{star} "
            f"(n={self.n_pairs}, p={self.p_value:.3g})"
        )


class NaturalExperiment:
    """A named hypothesis evaluated over matched-pair outcomes.

    Parameters
    ----------
    name:
        Identifier used in reports (e.g. ``"(3.2, 6.4] vs (6.4, 12.8]"``).
    hypothesis:
        Human-readable statement of H (treatment outcome > control outcome).
    null_probability:
        Per-pair probability of success under H0 (0.5: pure chance).
    alpha, practical_margin:
        Significance level and minimum deviation for practical importance.
    """

    def __init__(
        self,
        name: str,
        hypothesis: str = "treatment increases the outcome",
        null_probability: float = 0.5,
        alpha: float = DEFAULT_ALPHA,
        practical_margin: float = DEFAULT_PRACTICAL_MARGIN,
    ) -> None:
        if not 0.0 < null_probability < 1.0:
            raise ExperimentError(
                f"null probability must be in (0, 1), got {null_probability}"
            )
        if not 0.0 < alpha < 1.0:
            raise ExperimentError(f"alpha must be in (0, 1), got {alpha}")
        if practical_margin < 0.0 or practical_margin >= 0.5:
            raise ExperimentError(
                f"practical margin must be in [0, 0.5), got {practical_margin}"
            )
        self.name = name
        self.hypothesis = hypothesis
        self.null_probability = null_probability
        self.alpha = alpha
        self.practical_margin = practical_margin

    def evaluate(self, outcomes: Iterable[PairedOutcome]) -> ExperimentResult:
        """Run the sign test over the given paired outcomes.

        Exact ties carry no information about the direction of the effect
        and are dropped before testing (the standard sign-test convention).
        """
        n_holds = 0
        n_ties = 0
        n_total = 0
        for outcome in outcomes:
            n_total += 1
            if outcome.is_tie:
                n_ties += 1
            elif outcome.hypothesis_holds:
                n_holds += 1
        n_pairs = n_total - n_ties
        test: BinomialTestResult = binomial_test_greater(
            n_holds, n_pairs, self.null_probability
        )
        return ExperimentResult(
            name=self.name,
            n_pairs=n_pairs,
            n_holds=n_holds,
            n_ties=n_ties,
            p_value=test.p_value,
            alpha=self.alpha,
            practical_margin=self.practical_margin,
        )

    def evaluate_values(
        self,
        control_values: Sequence[float],
        treatment_values: Sequence[float],
    ) -> ExperimentResult:
        """Convenience wrapper taking parallel control/treatment sequences."""
        if len(control_values) != len(treatment_values):
            raise ExperimentError(
                "control and treatment sequences must have equal length"
            )
        return self.evaluate(
            PairedOutcome(c, t)
            for c, t in zip(control_values, treatment_values)
        )
