"""Detection of per-user service switches (Sec. 3.2, "User upgrades").

The paper identifies users observed on two networks of different capacities
— a "slow" and a "fast" network, each identified by the tuple (ISP name,
network prefix, geolocated city) — and compares the demand the same user
generated on each. This module provides the data model for a user's stay on
one service (:class:`ServicePeriod`), switch detection between consecutive
stays, and the slow/fast pairing used by Table 1 and Figs. 4-5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..exceptions import AnalysisError

__all__ = [
    "MIN_CAPACITY_RATIO",
    "NetworkId",
    "ServicePeriod",
    "ServiceSwitch",
    "UpgradeObservation",
    "detect_switches",
    "slow_fast_observation",
]

#: Minimum capacity ratio between two stays for the pair to count as a
#: genuine service change rather than measurement noise.
MIN_CAPACITY_RATIO = 1.25


@dataclass(frozen=True)
class NetworkId:
    """The paper's network identity tuple: (ISP name, prefix, city)."""

    isp: str
    prefix: str
    city: str

    def __str__(self) -> str:
        return f"{self.isp}/{self.prefix}/{self.city}"


@dataclass(frozen=True)
class ServicePeriod:
    """One user's contiguous stay on one broadband service.

    Demand summaries are carried both with and without BitTorrent-active
    intervals, since the paper reports the upgrade analyses for both.
    Times are in days since the start of the observation window.
    """

    user_id: str
    network: NetworkId
    start_day: float
    end_day: float
    capacity_mbps: float
    mean_mbps: float
    peak_mbps: float
    mean_no_bt_mbps: float
    peak_no_bt_mbps: float

    def __post_init__(self) -> None:
        if self.end_day <= self.start_day:
            raise AnalysisError(
                f"service period for {self.user_id} has non-positive duration"
            )
        if self.capacity_mbps <= 0:
            raise AnalysisError(
                f"service period for {self.user_id} has non-positive capacity"
            )

    @property
    def duration_days(self) -> float:
        return self.end_day - self.start_day


@dataclass(frozen=True)
class ServiceSwitch:
    """A transition between two consecutive service periods of one user."""

    before: ServicePeriod
    after: ServicePeriod

    @property
    def user_id(self) -> str:
        return self.before.user_id

    @property
    def capacity_ratio(self) -> float:
        return self.after.capacity_mbps / self.before.capacity_mbps

    @property
    def is_upgrade(self) -> bool:
        return self.capacity_ratio >= MIN_CAPACITY_RATIO

    @property
    def is_downgrade(self) -> bool:
        return self.capacity_ratio <= 1.0 / MIN_CAPACITY_RATIO

    def delta_mean(self, include_bt: bool = True) -> float:
        """Change in average demand (after − before), in Mbps."""
        if include_bt:
            return self.after.mean_mbps - self.before.mean_mbps
        return self.after.mean_no_bt_mbps - self.before.mean_no_bt_mbps

    def delta_peak(self, include_bt: bool = True) -> float:
        """Change in peak (95th-percentile) demand, in Mbps."""
        if include_bt:
            return self.after.peak_mbps - self.before.peak_mbps
        return self.after.peak_no_bt_mbps - self.before.peak_no_bt_mbps


@dataclass(frozen=True)
class UpgradeObservation:
    """One user's slow-network vs fast-network demand comparison.

    This is the unit of Table 1's natural experiment: the control is the
    user's own behavior on the slower network, the treatment the behavior
    on the faster one.
    """

    user_id: str
    slow: ServicePeriod
    fast: ServicePeriod

    @property
    def capacity_ratio(self) -> float:
        return self.fast.capacity_mbps / self.slow.capacity_mbps


def detect_switches(
    periods: Sequence[ServicePeriod],
    min_capacity_ratio: float = MIN_CAPACITY_RATIO,
) -> list[ServiceSwitch]:
    """Find service changes in one user's time-ordered stays.

    Consecutive stays must belong to the same user, be time-ordered, and
    differ in network identity; a switch is emitted when the capacity ratio
    between them (either direction) reaches ``min_capacity_ratio``.
    """
    if min_capacity_ratio <= 1.0:
        raise AnalysisError(
            f"min capacity ratio must exceed 1, got {min_capacity_ratio}"
        )
    switches: list[ServiceSwitch] = []
    for before, after in zip(periods, periods[1:]):
        if before.user_id != after.user_id:
            raise AnalysisError(
                "detect_switches expects periods of a single user; got "
                f"{before.user_id!r} then {after.user_id!r}"
            )
        if after.start_day < before.end_day:
            raise AnalysisError(
                f"service periods of {before.user_id!r} overlap in time"
            )
        if before.network == after.network:
            continue
        ratio = after.capacity_mbps / before.capacity_mbps
        if ratio >= min_capacity_ratio or ratio <= 1.0 / min_capacity_ratio:
            switches.append(ServiceSwitch(before, after))
    return switches


def slow_fast_observation(
    periods: Iterable[ServicePeriod],
    min_capacity_ratio: float = MIN_CAPACITY_RATIO,
) -> UpgradeObservation | None:
    """Pair one user's slowest and fastest stays, if meaningfully different.

    Returns ``None`` when the user was seen on fewer than two networks or
    the capacity spread does not reach ``min_capacity_ratio``.
    """
    stays = list(periods)
    if len(stays) < 2:
        return None
    users = {p.user_id for p in stays}
    if len(users) != 1:
        raise AnalysisError(f"periods span multiple users: {sorted(users)}")
    slow = min(stays, key=lambda p: p.capacity_mbps)
    fast = max(stays, key=lambda p: p.capacity_mbps)
    if slow.network == fast.network:
        return None
    if fast.capacity_mbps / slow.capacity_mbps < min_capacity_ratio:
        return None
    return UpgradeObservation(user_id=slow.user_id, slow=slow, fast=fast)
