"""Bin definitions used throughout the paper's evaluation.

The central one is the exponential *capacity class*: class ``k`` holds every
user whose download capacity lies in ``(100 kbps * 2^(k-1), 100 kbps * 2^k]``
(Sec. 3.1). Other analyses reuse the same machinery with explicit bin edges:
the case-study tiers (<1, 1-8, 8-16, 16-32, >32 Mbps), price-of-access bins,
latency bins, and packet-loss bins.
"""

from __future__ import annotations

import decimal
import math
import numbers
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import BinningError

__all__ = [
    "CAPACITY_CLASS_BASE_MBPS",
    "CASE_STUDY_TIERS",
    "LATENCY_BINS_MS",
    "LOSS_BINS_FRACTION",
    "PRICE_OF_ACCESS_BINS_USD",
    "UPGRADE_COST_BINS_USD",
    "UPGRADE_TIERS_MBPS",
    "Bin",
    "BinSpec",
    "capacity_class",
    "capacity_class_bounds",
    "capacity_class_spec",
    "explicit_bins",
    "geometric_bins",
]

#: Base of the paper's capacity classes: 100 kbps, expressed in Mbps.
CAPACITY_CLASS_BASE_MBPS = 0.1

#: Case-study tiers of Sec. 5 (lower-exclusive, upper-inclusive, in Mbps).
CASE_STUDY_TIERS: tuple[tuple[float, float], ...] = (
    (0.0, 1.0),
    (1.0, 8.0),
    (8.0, 16.0),
    (16.0, 32.0),
    (32.0, math.inf),
)

#: Initial-service tiers of the Fig. 5 upgrade analysis, in Mbps.
UPGRADE_TIERS_MBPS: tuple[tuple[float, float], ...] = (
    (0.25, 1.0),
    (1.0, 4.0),
    (4.0, 16.0),
    (16.0, 64.0),
    (64.0, 256.0),
)

#: Price-of-access groups of Sec. 5 (USD PPP per month).
PRICE_OF_ACCESS_BINS_USD: tuple[tuple[float, float], ...] = (
    (0.0, 25.0),
    (25.0, 60.0),
    (60.0, math.inf),
)

#: Cost-of-upgrade classes of Sec. 6 (USD PPP per +1 Mbps per month).
UPGRADE_COST_BINS_USD: tuple[tuple[float, float], ...] = (
    (0.0, 0.5),
    (0.5, 1.0),
    (1.0, math.inf),
)

#: Latency bins of Table 7, in milliseconds.
LATENCY_BINS_MS: tuple[tuple[float, float], ...] = (
    (0.0, 64.0),
    (64.0, 128.0),
    (128.0, 256.0),
    (256.0, 512.0),
    (512.0, 2048.0),
)

#: Packet-loss bins of Table 8, as fractions (the paper prints percentages).
LOSS_BINS_FRACTION: tuple[tuple[float, float], ...] = (
    (0.0, 0.0001),
    (0.0001, 0.001),
    (0.001, 0.01),
    (0.01, 0.15),
)


@dataclass(frozen=True)
class Bin:
    """A half-open interval ``(low, high]``.

    The lower edge is exclusive and the upper edge inclusive, matching the
    paper's class definition ``(100 kbps * 2^(k-1), 100 kbps * 2^k]``.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise BinningError(f"empty bin ({self.low}, {self.high}]")

    def __contains__(self, value: object) -> bool:
        # Any real number can be placed on the line: builtin ints/floats,
        # numpy scalars (numbers.Real), and Decimal (a Real in behavior
        # but deliberately unregistered with the ABC). NaN compares
        # False on both sides and so is never a member.
        if not isinstance(value, (numbers.Real, decimal.Decimal)):
            return False
        return self.low < value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low

    def label(self, unit: str = "Mbps") -> str:
        """Human-readable label, e.g. ``"(3.2, 6.4] Mbps"``."""
        hi = "inf" if math.isinf(self.high) else f"{self.high:g}"
        return f"({self.low:g}, {hi}] {unit}".strip()


class BinSpec:
    """An ordered, non-overlapping sequence of :class:`Bin` objects.

    Provides membership queries and grouping of values into bins; values
    falling outside every bin map to ``None`` (and are excluded from group
    results), mirroring how the paper drops out-of-range users.
    """

    def __init__(self, bins: Sequence[Bin]):
        if not bins:
            raise BinningError("a BinSpec needs at least one bin")
        ordered = sorted(bins, key=lambda b: b.low)
        for left, right in zip(ordered, ordered[1:]):
            if right.low < left.high:
                raise BinningError(
                    f"bins overlap: {left.label()} and {right.label()}"
                )
        self._bins = tuple(ordered)
        # Precomputed edge arrays for the vectorized lookup.
        self._lows = np.array([b.low for b in ordered], dtype=float)
        self._highs = np.array([b.high for b in ordered], dtype=float)

    @property
    def bins(self) -> tuple[Bin, ...]:
        return self._bins

    def __len__(self) -> int:
        return len(self._bins)

    def __iter__(self):
        return iter(self._bins)

    def __getitem__(self, index: int) -> Bin:
        return self._bins[index]

    def index_of(self, value: float) -> int | None:
        """Index of the bin containing ``value``, or ``None``."""
        for i, b in enumerate(self._bins):
            if value in b:
                return i
        return None

    def index_of_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`index_of`: bin index per value, ``-1`` for
        values outside every bin (gaps, NaN, out of range).

        Agrees with the scalar path on every input, including exact bin
        edges — ``searchsorted(side="left")`` locates the candidate bin
        for the ``(low, high]`` convention (a value equal to ``low``
        belongs to the previous bin), and an explicit membership check
        handles gaps between bins, ±inf, and NaN (all comparisons
        False ⇒ -1).
        """
        values = np.asarray(values, dtype=float)
        candidate = np.searchsorted(self._lows, values, side="left") - 1
        clipped = np.clip(candidate, 0, len(self._bins) - 1)
        inside = (values > self._lows[clipped]) & (
            values <= self._highs[clipped]
        )
        return np.where(inside & (candidate >= 0), clipped, -1)

    def bin_of(self, value: float) -> Bin | None:
        """The bin containing ``value``, or ``None``."""
        idx = self.index_of(value)
        return None if idx is None else self._bins[idx]

    def group(self, pairs: Iterable[tuple[float, object]]) -> dict[Bin, list]:
        """Group ``(key_value, payload)`` pairs by the bin of the key.

        Only bins that received at least one payload appear in the result.
        """
        out: dict[Bin, list] = {}
        for key, payload in pairs:
            b = self.bin_of(key)
            if b is not None:
                out.setdefault(b, []).append(payload)
        return out


def explicit_bins(edges: Sequence[tuple[float, float]]) -> BinSpec:
    """Build a :class:`BinSpec` from explicit ``(low, high)`` edge pairs."""
    return BinSpec([Bin(low, high) for low, high in edges])


def geometric_bins(base: float, count: int, ratio: float = 2.0) -> BinSpec:
    """``count`` geometric bins ``(base*ratio^(k-1), base*ratio^k]``, k=1..count."""
    if base <= 0 or ratio <= 1 or count < 1:
        raise BinningError(
            f"invalid geometric bin spec base={base} ratio={ratio} count={count}"
        )
    return BinSpec(
        [Bin(base * ratio ** (k - 1), base * ratio**k) for k in range(1, count + 1)]
    )


def capacity_class(capacity_mbps: float) -> int:
    """The paper's capacity class ``k`` for a download capacity in Mbps.

    Class ``k`` covers ``(100 kbps * 2^(k-1), 100 kbps * 2^k]``; capacities
    at or below 100 kbps fall in class 1 by convention (the paper's datasets
    contain essentially no sub-100 kbps broadband users).
    """
    if capacity_mbps <= 0:
        raise BinningError(f"capacity must be positive, got {capacity_mbps}")
    ratio = capacity_mbps / CAPACITY_CLASS_BASE_MBPS
    if ratio <= 1.0:
        return 1
    k = max(1, math.ceil(math.log2(ratio)))
    # log2 rounds edge-adjacent values (within an ulp of a class edge) onto
    # the edge itself, so repair the estimate against the exact bounds the
    # bins use; this keeps capacity_class consistent with
    # capacity_class_bounds / BinSpec membership at every edge.
    while capacity_mbps > CAPACITY_CLASS_BASE_MBPS * 2**k:
        k += 1
    while k > 1 and capacity_mbps <= CAPACITY_CLASS_BASE_MBPS * 2 ** (k - 1):
        k -= 1
    return k


def capacity_class_bounds(k: int) -> Bin:
    """The ``(low, high]`` bounds, in Mbps, of capacity class ``k``."""
    if k < 1:
        raise BinningError(f"capacity classes start at 1, got {k}")
    return Bin(CAPACITY_CLASS_BASE_MBPS * 2 ** (k - 1), CAPACITY_CLASS_BASE_MBPS * 2**k)


def capacity_class_spec(max_class: int = 14) -> BinSpec:
    """A :class:`BinSpec` covering classes 1..``max_class``.

    The default of 14 reaches ``(819.2, 1638.4]`` Mbps, beyond any capacity
    in the datasets this library generates.
    """
    return BinSpec([capacity_class_bounds(k) for k in range(1, max_class + 1)])
