"""Deterministic sharded execution across worker processes.

The world builder (and any future embarrassingly-parallel stage) shards
its work into self-describing task objects and runs them through
:func:`run_sharded`. Three properties make the parallelism safe:

* **order independence** — results are returned in task-submission
  order, regardless of which worker finished first;
* **seed independence** — tasks must carry their own random streams
  (the builder derives one :class:`numpy.random.SeedSequence` per user),
  so no worker ever observes another worker's draws;
* **process isolation** — workers are separate processes; each one
  rebuilds its context from the (picklable) configuration via the
  ``initializer`` hook instead of sharing mutable state.

Together these guarantee that a sharded run is bit-identical to a
serial one for any worker count and any task chunking.

Workers can additionally record observability events (counters, spans —
see :mod:`repro.obs`): pass a :class:`~repro.obs.ledger.RunLedger` and
every task runs under a fresh per-task ambient ledger whose events ride
back with the result and are merged into the passed ledger **in
task-submission order**, so the merged ledger is as worker-count
invariant as the results themselves.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from ..exceptions import ReproError
from ..obs.ledger import RunLedger, scoped

__all__ = ["resolve_jobs", "run_sharded", "stream_rng"]

_TaskT = TypeVar("_TaskT")
_ResultT = TypeVar("_ResultT")


def resolve_jobs(jobs: int | None) -> int:
    """Validate a worker count; ``None`` means one worker per CPU."""
    if jobs is None:
        return max(1, os.cpu_count() or 1)
    if isinstance(jobs, bool) or int(jobs) != jobs:
        raise ReproError(f"jobs must be a positive integer, got {jobs!r}")
    if jobs < 1:
        raise ReproError(
            f"jobs must be a positive integer, got {jobs} "
            "(use 1 for a serial build)"
        )
    return int(jobs)


def stream_rng(*path: int) -> np.random.Generator:
    """An independent generator for one node of a seed tree.

    ``path`` is the node's address — e.g. ``(seed, stream, country,
    user)`` for a household's generative draws, or the same address
    prefixed differently for its fault stream. Streams at distinct
    addresses are statistically independent (``SeedSequence`` spawning),
    which is what makes sharded runs bit-identical to serial ones: no
    task's draws depend on any other task having run.
    """
    return np.random.default_rng(np.random.SeedSequence(list(path)))


class _LedgeredWorker:
    """Picklable wrapper running a worker under a per-task ledger scope.

    The task's events come back alongside its result, so the parent can
    merge shard ledgers deterministically however the pool scheduled
    the tasks.
    """

    def __init__(self, worker: Callable) -> None:
        self.worker = worker

    def __call__(self, task):
        with scoped() as shard:
            result = self.worker(task)
        return result, shard


def run_sharded(
    worker: Callable[[_TaskT], _ResultT],
    tasks: Iterable[_TaskT],
    *,
    jobs: int | None = 1,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence = (),
    ledger: RunLedger | None = None,
    with_ledgers: bool = False,
    on_result: Callable[[int, object], None] | None = None,
) -> list:
    """Run ``worker`` over ``tasks``; results come back in task order.

    With ``jobs == 1`` (or at most one task) everything runs in the
    current process — the ``initializer`` is still invoked once, so the
    serial path exercises exactly the same worker code as the parallel
    one.

    With a ``ledger``, each task runs under its own ambient
    :class:`~repro.obs.ledger.RunLedger` scope (events recorded via
    :func:`repro.obs.count` / :func:`repro.obs.span` land there), and
    the per-task ledgers are merged into ``ledger`` in task-submission
    order — deterministic for any worker count.

    ``on_result`` is invoked in the calling process as each task's
    result becomes available — ``on_result(task_index, raw_result)``,
    where ``raw_result`` is exactly the element that will appear at
    ``task_index`` in the returned list (a ``(result, shard)`` pair
    when shards are kept). Invocation order follows *completion*, not
    submission, so callbacks must be order-independent; the DAG
    scheduler uses this to publish each stage's artifact the moment
    the stage finishes instead of when its whole wave does.

    With ``with_ledgers=True`` the per-task shard ledgers are returned
    instead of (or in addition to) being merged: each element of the
    result list becomes a ``(result, shard_ledger)`` pair, in task
    order. The DAG scheduler uses this to persist every stage's own
    events next to its artifact, so a cache hit can replay exactly the
    ledger the original execution recorded.
    """
    task_list = list(tasks)
    n_jobs = resolve_jobs(jobs)
    keep_shards = with_ledgers or ledger is not None
    call = _LedgeredWorker(worker) if keep_shards else worker
    if n_jobs == 1 or len(task_list) <= 1:
        if initializer is not None:
            initializer(*initargs)
        raw = []
        for index, task in enumerate(task_list):
            outcome = call(task)
            if on_result is not None:
                on_result(index, outcome)
            raw.append(outcome)
    else:
        with ProcessPoolExecutor(
            max_workers=min(n_jobs, len(task_list)),
            initializer=initializer,
            initargs=tuple(initargs),
        ) as pool:
            futures = {
                pool.submit(call, task): index
                for index, task in enumerate(task_list)
            }
            raw = [None] * len(task_list)
            for future in as_completed(futures):
                index = futures[future]
                outcome = future.result()
                if on_result is not None:
                    on_result(index, outcome)
                raw[index] = outcome
    if not keep_shards:
        return raw
    if ledger is not None:
        for _, shard in raw:
            ledger.merge(shard)
    if with_ledgers:
        return raw
    return [result for result, _ in raw]
