"""Statistical primitives used by the natural-experiment framework.

The one-tailed binomial test is implemented from first principles (the
binomial tail as a regularized incomplete beta function, evaluated by a
log-space continued fraction) because it is the load-bearing statistic
of the paper; the test suite cross-checks it against
``scipy.stats.binomtest``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import AnalysisError

__all__ = [
    "BinomialTestResult",
    "ConfidenceInterval",
    "binomial_sf",
    "binomial_test_greater",
    "ecdf",
    "log_binomial_pmf",
    "mean_confidence_interval",
    "normal_quantile",
    "pearson_r",
    "percentile",
    "regularized_incomplete_beta",
    "spearman_r",
    "wilson_interval",
]

#: z value for a two-sided 95% normal confidence interval.
Z_95 = 1.959963984540054

# Coefficients of Acklam's rational approximation to the inverse normal
# CDF, the initial guess that one Halley step below polishes to full
# double precision.
_ACKLAM_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_ACKLAM_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_ACKLAM_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_ACKLAM_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)
_ACKLAM_LOW = 0.02425


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF ``Phi^{-1}(p)`` for ``p`` in (0, 1).

    Acklam's rational approximation refined with one Halley step against
    the exact CDF (via ``erfc``), giving near machine-precision quantiles
    over the whole open interval — accurate z values for *any*
    confidence level, not just the paper's 95%.
    """
    if not 0.0 < p < 1.0:
        raise AnalysisError(f"quantile probability must be in (0, 1), got {p}")
    a, b, c, d = _ACKLAM_A, _ACKLAM_B, _ACKLAM_C, _ACKLAM_D
    if p < _ACKLAM_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        x = (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    elif p <= 1.0 - _ACKLAM_LOW:
        q = p - 0.5
        r = q * q
        x = (
            ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        ) * q / (
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
        )
    else:
        q = math.sqrt(-2.0 * math.log1p(-p))
        x = -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    # One Halley step: e = Phi(x) - p, u = e / phi(x).
    e = 0.5 * math.erfc(-x / math.sqrt(2.0)) - p
    u = e * math.sqrt(2.0 * math.pi) * math.exp(x * x / 2.0)
    return x - u / (1.0 + x * u / 2.0)


def _z_for_level(level: float) -> float:
    """Two-sided normal z for a confidence level in (0, 1).

    The paper's 95% level returns the :data:`Z_95` constant *exactly*,
    keeping historical outputs (and the golden report) byte-stable.
    """
    if not 0.0 < level < 1.0:
        raise AnalysisError(
            f"confidence level must be in (0, 1), got {level}"
        )
    if level == 0.95:
        return Z_95
    return normal_quantile(0.5 + level / 2.0)


def log_binomial_pmf(k: int, n: int, p: float) -> float:
    """Natural log of the binomial PMF ``P[X = k]`` for ``X ~ Bin(n, p)``."""
    if not 0 <= k <= n:
        raise AnalysisError(f"k={k} outside [0, n={n}]")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"p={p} outside [0, 1]")
    if p == 0.0:
        return 0.0 if k == 0 else -math.inf
    if p == 1.0:
        return 0.0 if k == n else -math.inf
    log_choose = (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )
    return log_choose + k * math.log(p) + (n - k) * math.log1p(-p)


#: Continued-fraction convergence threshold and iteration cap; 300
#: iterations is far beyond what any (a, b, x) reachable from a binomial
#: tail needs (convergence is typically < 50 iterations).
_BETACF_EPS = 3.0e-16
_BETACF_MAX_ITER = 300
_BETACF_TINY = 1.0e-300


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function (Lentz).

    Evaluates the continued fraction of DLMF 8.17.22 with the modified
    Lentz algorithm; callers must ensure ``x < (a + 1) / (a + b + 2)``
    for fast convergence (use the symmetry transform otherwise).
    """
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _BETACF_TINY:
        d = _BETACF_TINY
    d = 1.0 / d
    h = d
    for m in range(1, _BETACF_MAX_ITER + 1):
        m2 = 2 * m
        # Even step.
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _BETACF_TINY:
            d = _BETACF_TINY
        c = 1.0 + aa / c
        if abs(c) < _BETACF_TINY:
            c = _BETACF_TINY
        d = 1.0 / d
        h *= d * c
        # Odd step.
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _BETACF_TINY:
            d = _BETACF_TINY
        c = 1.0 + aa / c
        if abs(c) < _BETACF_TINY:
            c = _BETACF_TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _BETACF_EPS:
            return h
    raise AnalysisError(
        f"incomplete beta continued fraction failed to converge "
        f"(a={a}, b={b}, x={x})"
    )


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """The regularized incomplete beta function ``I_x(a, b)``.

    The prefactor ``x^a (1-x)^b / (a B(a, b))`` is assembled in log
    space, so deep-tail values keep full relative accuracy down to the
    underflow limit of a double.
    """
    if a <= 0 or b <= 0:
        raise AnalysisError(f"beta parameters must be positive, got a={a}, b={b}")
    if not 0.0 <= x <= 1.0:
        raise AnalysisError(f"x={x} outside [0, 1]")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    log_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(log_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def binomial_sf(k: int, n: int, p: float) -> float:
    """Upper tail ``P[X >= k]`` for ``X ~ Bin(n, p)``, evaluated stably.

    Uses the closed-form identity ``P[X >= k] = I_p(k, n - k + 1)``
    (regularized incomplete beta, DLMF 8.17.5) evaluated by a log-space
    continued fraction, never by complementing a floating-point lower
    tail — the complement route loses all relative accuracy exactly
    where p-values matter, in the deep tail. Unlike direct summation of
    the upper-tail PMF this is O(1) in ``n``, so p-values stay exact and
    cheap at 100k+ matched pairs; accuracy is verified against scipy in
    the test suite.
    """
    if n < 0:
        raise AnalysisError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"p={p} outside [0, 1]")
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    if p == 0.0:
        return 0.0
    if p == 1.0:
        return 1.0
    total = regularized_incomplete_beta(float(k), float(n - k + 1), p)
    return min(1.0, max(0.0, total))


@dataclass(frozen=True)
class BinomialTestResult:
    """Outcome of a one-tailed (greater) exact binomial test."""

    n_successes: int
    n_trials: int
    null_probability: float
    p_value: float

    @property
    def fraction(self) -> float:
        """Observed success fraction; NaN when there were no trials."""
        if self.n_trials == 0:
            return math.nan
        return self.n_successes / self.n_trials

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the null hypothesis is rejected at level ``alpha``."""
        return self.p_value < alpha


def binomial_test_greater(
    n_successes: int, n_trials: int, null_probability: float = 0.5
) -> BinomialTestResult:
    """One-tailed exact binomial test, alternative "greater".

    This is the paper's significance test: under H0 the interaction between
    the two studied variables is random, so each matched pair supports the
    hypothesis with probability ``null_probability`` (0.5); the p-value is
    ``P[X >= n_successes]``.
    """
    if n_trials < 0 or n_successes < 0 or n_successes > n_trials:
        raise AnalysisError(
            f"invalid counts: {n_successes} successes of {n_trials} trials"
        )
    if n_trials == 0:
        return BinomialTestResult(0, 0, null_probability, 1.0)
    p_value = binomial_sf(n_successes, n_trials, null_probability)
    return BinomialTestResult(n_successes, n_trials, null_probability, p_value)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a point estimate."""

    center: float
    low: float
    high: float
    level: float = 0.95

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def mean_confidence_interval(
    values: Sequence[float] | np.ndarray, level: float = 0.95
) -> ConfidenceInterval:
    """Normal-approximation confidence interval for the mean.

    The default level matches the error bars of the paper's figures
    (95% CI of the mean); any level in (0, 1) is supported via
    :func:`normal_quantile`. A single observation yields a degenerate
    interval at the value.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot compute a confidence interval of nothing")
    z = _z_for_level(level)
    center = float(arr.mean())
    if arr.size == 1:
        return ConfidenceInterval(center, center, center, level)
    sem = float(arr.std(ddof=1) / math.sqrt(arr.size))
    return ConfidenceInterval(center, center - z * sem, center + z * sem, level)


def wilson_interval(
    n_successes: int, n_trials: int, level: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion.

    Used to put uncertainty bands around the "% H holds" figures of the
    natural experiments; unlike the normal approximation it behaves at
    the edges (0%, 100%) and for small pair counts. Any level in (0, 1)
    is supported via :func:`normal_quantile`.
    """
    if n_trials <= 0 or n_successes < 0 or n_successes > n_trials:
        raise AnalysisError(
            f"invalid counts: {n_successes} of {n_trials}"
        )
    z = _z_for_level(level)
    p_hat = n_successes / n_trials
    denom = 1.0 + z * z / n_trials
    center = (p_hat + z * z / (2 * n_trials)) / denom
    half = (
        z
        * math.sqrt(
            p_hat * (1 - p_hat) / n_trials
            + z * z / (4 * n_trials * n_trials)
        )
        / denom
    )
    return ConfidenceInterval(
        center=p_hat,
        low=max(0.0, center - half),
        high=min(1.0, center + half),
        level=level,
    )


def pearson_r(x: Sequence[float] | np.ndarray, y: Sequence[float] | np.ndarray) -> float:
    """Pearson correlation coefficient of two equal-length sequences."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise AnalysisError("pearson_r expects two equal-length 1-D sequences")
    if xs.size < 2:
        raise AnalysisError("correlation needs at least two points")
    xd = xs - xs.mean()
    yd = ys - ys.mean()
    denom = math.sqrt(float(xd @ xd) * float(yd @ yd))
    if denom == 0.0:
        return math.nan
    # When one variable's variance underflows to a subnormal, the
    # division can stray outside the mathematical range; clamp.
    return float(min(1.0, max(-1.0, float(xd @ yd) / denom)))


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing the mean rank."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def spearman_r(x: Sequence[float] | np.ndarray, y: Sequence[float] | np.ndarray) -> float:
    """Spearman rank correlation (Pearson correlation of average ranks)."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise AnalysisError("spearman_r expects two equal-length 1-D sequences")
    return pearson_r(_ranks(xs), _ranks(ys))


def percentile(values: Sequence[float] | np.ndarray, q: float) -> float:
    """The ``q``-th percentile (linear interpolation), ``q`` in [0, 100]."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot take a percentile of nothing")
    if not 0.0 <= q <= 100.0:
        raise AnalysisError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))


def ecdf(values: Sequence[float] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: sorted unique support ``x`` and ``P[X <= x]``.

    Used to regenerate every CDF figure in the paper. Returns a pair of
    arrays of equal length; the second is non-decreasing and ends at 1.0.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot compute the ECDF of nothing")
    xs, counts = np.unique(arr, return_counts=True)
    return xs, np.cumsum(counts) / arr.size
