"""Core analysis toolkit: the paper's primary methodological contribution.

This package implements the statistical machinery of Bischof et al. (IMC'14):

* :mod:`repro.core.stats` — exact one-tailed binomial tests, correlation,
  confidence intervals and empirical CDFs;
* :mod:`repro.core.binning` — the paper's exponential capacity classes and
  the various tier/price/quality bins used throughout the evaluation;
* :mod:`repro.core.metrics` — mean and peak (95th-percentile) demand and
  link-utilization summaries;
* :mod:`repro.core.matching` — nearest-neighbor matching with a relative
  caliper, used to pair "similar" users across treatment groups;
* :mod:`repro.core.experiments` — the natural-experiment study design
  (hypothesis, %-holds, p-value, practical-significance margin);
* :mod:`repro.core.upgrades` — detection of per-user service switches and
  before/after demand deltas;
* :mod:`repro.core.regression` — per-market price~capacity regression used
  to estimate the cost of increasing capacity;
* :mod:`repro.core.executor` — deterministic sharded execution across
  worker processes (used by the world builder).
"""

from .binning import (
    CAPACITY_CLASS_BASE_MBPS,
    CASE_STUDY_TIERS,
    Bin,
    BinSpec,
    capacity_class,
    capacity_class_bounds,
    capacity_class_spec,
    explicit_bins,
    geometric_bins,
)
from .executor import resolve_jobs, run_sharded
from .experiments import ExperimentResult, NaturalExperiment, PairedOutcome
from .matching import MatchedPair, MatchingSummary, caliper_compatible, match_pairs
from .metrics import DemandSummary, demand_summary, peak_demand, utilization
from .qed import QedResult, QuasiExperiment
from .regression import MarketRegression, fit_price_capacity
from .stats import (
    BinomialTestResult,
    ConfidenceInterval,
    binomial_test_greater,
    ecdf,
    mean_confidence_interval,
    pearson_r,
    percentile,
    spearman_r,
    wilson_interval,
)
from .upgrades import ServiceSwitch, UpgradeObservation, detect_switches

__all__ = [
    "CAPACITY_CLASS_BASE_MBPS",
    "CASE_STUDY_TIERS",
    "Bin",
    "BinSpec",
    "BinomialTestResult",
    "ConfidenceInterval",
    "DemandSummary",
    "ExperimentResult",
    "MarketRegression",
    "MatchedPair",
    "MatchingSummary",
    "NaturalExperiment",
    "PairedOutcome",
    "QedResult",
    "QuasiExperiment",
    "ServiceSwitch",
    "UpgradeObservation",
    "binomial_test_greater",
    "caliper_compatible",
    "capacity_class",
    "capacity_class_bounds",
    "capacity_class_spec",
    "demand_summary",
    "detect_switches",
    "ecdf",
    "explicit_bins",
    "fit_price_capacity",
    "geometric_bins",
    "match_pairs",
    "mean_confidence_interval",
    "peak_demand",
    "pearson_r",
    "percentile",
    "resolve_jobs",
    "run_sharded",
    "spearman_r",
    "utilization",
    "wilson_interval",
]
