"""Nearest-neighbor matching with a relative caliper.

The paper pairs each user in the "treatment" group with a similar user in
the "control" group, requiring the pair to be *within 25% of each other on
every confounding factor* (Sec. 3.2). Matching is 1:1 without replacement.

This module implements a deterministic, globally-greedy variant: all
caliper-compatible (control, treatment) candidate pairs are ranked by a
scale-free distance (the sum of absolute log-ratios over the confounders)
and accepted in order, skipping candidates whose endpoints were already
matched. Global greediness avoids the order-dependence of per-unit greedy
matching and makes results reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Generic, Sequence, TypeVar

import numpy as np

from ..exceptions import MatchingError
from ..obs import ledger as obs

__all__ = [
    "DEFAULT_CALIPER",
    "LOSS_MATCH_FLOOR",
    "MatchedPair",
    "MatchingSummary",
    "ZERO_FLOOR",
    "caliper_compatible",
    "candidate_chunk_rows",
    "match_pairs",
    "match_pairs_arrays",
]

T = TypeVar("T")
U = TypeVar("U")

#: The paper's caliper: members of a pair must be within 25% of each other.
DEFAULT_CALIPER = 0.25

#: Values at or below this magnitude are treated as "zero" for ratio
#: comparisons (e.g. unmeasurably small packet-loss rates).
ZERO_FLOOR = 1e-6

#: Floor applied to *loss rates* before they enter the matching space, so
#: that two effectively loss-free lines count as similar. This is the
#: single source of truth for the loss floor — the confounder extractors
#: in :mod:`repro.analysis.common` import it from here. It must dominate
#: :data:`ZERO_FLOOR`: the matcher floors every confounder at
#: ``ZERO_FLOOR`` as a last resort, and a loss floor below it would be
#: silently overridden, changing caliper semantics for near-zero loss.
LOSS_MATCH_FLOOR = 1e-4

assert LOSS_MATCH_FLOOR >= ZERO_FLOOR, (
    "the loss floor must dominate the generic zero floor, or the "
    "matcher's own flooring would silently change caliper semantics"
)

#: Memory budget for one candidate-enumeration block, in float64 cells of
#: the (chunk, treatment, confounder) difference array (~32 MB).
CANDIDATE_CELL_BUDGET = 4_000_000


def candidate_chunk_rows(
    n_treatment: int,
    n_confounders: int,
    cell_budget: int = CANDIDATE_CELL_BUDGET,
) -> int:
    """Control rows per candidate-enumeration block.

    The block materializes a ``(chunk, n_treatment, n_confounders)``
    difference array, so the budget must be divided by *both* trailing
    dimensions — dividing by the treatment count alone would let peak
    memory grow ``n_confounders``-fold past the bound.
    """
    cells_per_row = max(1, n_treatment) * max(1, n_confounders)
    return max(1, cell_budget // cells_per_row)


def caliper_compatible(a: float, b: float, caliper: float = DEFAULT_CALIPER) -> bool:
    """Whether two confounder values are within ``caliper`` of each other.

    "Within 25% of each other" is interpreted multiplicatively and
    symmetrically: ``max(a, b) <= (1 + caliper) * min(a, b)``, after flooring
    both values at :data:`ZERO_FLOOR` so that pairs of effectively-zero
    values (e.g. two loss-free lines) are compatible.

    Non-finite confounders are rejected with :class:`MatchingError`
    rather than silently falling through the comparisons: a NaN here
    means an upstream eligibility filter failed (missing market
    covariates surface as NaN — see
    :func:`repro.analysis.common._market_value` — and must be excluded
    *before* matching), and an infinity is equally meaningless — two
    ``inf`` values would satisfy ``inf <= 1.25 * inf`` and "match"
    despite carrying no information about similarity.
    """
    if caliper <= 0:
        raise MatchingError(f"caliper must be positive, got {caliper}")
    if not (math.isfinite(a) and math.isfinite(b)):
        raise MatchingError(
            f"confounders must be finite, got {a}, {b} "
            "(exclude users with missing covariates before matching)"
        )
    if a < 0 or b < 0:
        raise MatchingError(f"confounders must be non-negative, got {a}, {b}")
    lo = max(min(a, b), ZERO_FLOOR)
    hi = max(max(a, b), ZERO_FLOOR)
    return hi <= (1.0 + caliper) * lo


@dataclass(frozen=True)
class MatchedPair(Generic[T, U]):
    """A matched (control, treatment) pair and its confounder distance."""

    control: T
    treatment: U
    distance: float


@dataclass(frozen=True)
class MatchingSummary(Generic[T, U]):
    """The result of a matching run."""

    pairs: tuple[MatchedPair[T, U], ...]
    n_control: int
    n_treatment: int
    caliper: float

    @property
    def n_matched(self) -> int:
        return len(self.pairs)

    @property
    def match_rate(self) -> float:
        """Fraction of the smaller group that found a partner."""
        smaller = min(self.n_control, self.n_treatment)
        if smaller == 0:
            return 0.0
        return self.n_matched / smaller


def _confounder_matrix(
    units: Sequence[T],
    confounders: Sequence[Callable[[T], float]],
) -> np.ndarray:
    """Log-space confounder matrix, one row per unit.

    Extraction is necessarily one Python call per (unit, confounder),
    but validation and the log transform run vectorized per column.
    """
    columns = []
    for extract in confounders:
        values = np.fromiter(
            (float(extract(unit)) for unit in units),
            dtype=float,
            count=len(units),
        )
        columns.append(_log_confounder_column(values, repr(extract)))
    return np.column_stack(columns).reshape(len(units), len(confounders))


def _log_confounder_column(values: np.ndarray, label: str) -> np.ndarray:
    """Validate one confounder column (finite, non-negative) and take it
    to log space; shared by the object and columnar matching paths."""
    invalid = ~np.isfinite(values) | (values < 0)
    if invalid.any():
        value = float(values[int(np.argmax(invalid))])
        raise MatchingError(
            f"confounder {label} produced invalid value {value!r}"
        )
    return np.log(np.maximum(values, ZERO_FLOOR))


def match_pairs(
    control: Sequence[T],
    treatment: Sequence[U],
    confounders: Sequence[Callable],
    caliper: float = DEFAULT_CALIPER,
    max_pairs: int | None = None,
) -> MatchingSummary[T, U]:
    """Match control and treatment units on shared confounders.

    Parameters
    ----------
    control, treatment:
        The two unit pools; elements are arbitrary objects.
    confounders:
        Callables extracting one non-negative float per unit (applied to
        units of both pools). Every confounder must pass the caliper check
        for a pair to be eligible.
    caliper:
        Maximum relative difference per confounder (default 25%).
    max_pairs:
        Optional cap on the number of accepted pairs (cheapest-distance
        pairs are kept).
    """
    if not confounders:
        raise MatchingError("at least one confounder is required")

    def _accounted(summary: MatchingSummary, n_candidates: int) -> MatchingSummary:
        # Run-ledger accounting (no-op outside a traced run): pool
        # sizes, caliper-compatible candidates, and accepted pairs.
        obs.count("matching.runs")
        obs.count("matching.pool.control", summary.n_control)
        obs.count("matching.pool.treatment", summary.n_treatment)
        obs.count("matching.candidates", n_candidates)
        obs.count("matching.pairs", summary.n_matched)
        return summary

    summary_empty = MatchingSummary(
        pairs=(), n_control=len(control), n_treatment=len(treatment), caliper=caliper
    )
    if not control or not treatment:
        return _accounted(summary_empty, 0)

    log_c = _confounder_matrix(control, confounders)
    log_t = _confounder_matrix(treatment, confounders)
    accepted, n_candidates = _greedy_index_pairs(
        log_c, log_t, caliper, max_pairs
    )
    return _accounted(
        MatchingSummary(
            pairs=tuple(
                MatchedPair(control[c], treatment[t], dist)
                for c, t, dist in accepted
            ),
            n_control=len(control),
            n_treatment=len(treatment),
            caliper=caliper,
        ),
        n_candidates,
    )


def match_pairs_arrays(
    control_confounders: Sequence[np.ndarray],
    treatment_confounders: Sequence[np.ndarray],
    caliper: float = DEFAULT_CALIPER,
    max_pairs: int | None = None,
) -> MatchingSummary[int, int]:
    """Columnar twin of :func:`match_pairs`: one array per confounder.

    Each sequence holds one 1-D float array per confounder (all the same
    length within a pool); the returned pairs carry *indices* into the
    pools instead of unit objects. Given the same values in the same
    order, the accepted (control, treatment) index pairs — and the
    run-ledger accounting — are identical to the object path's, because
    both run the same validated log-space greedy core.
    """
    if not control_confounders or not treatment_confounders:
        raise MatchingError("at least one confounder is required")
    if len(control_confounders) != len(treatment_confounders):
        raise MatchingError(
            "control and treatment must share the same confounder set"
        )

    def _matrix(arrays: Sequence[np.ndarray], pool: str) -> np.ndarray:
        columns = []
        n_units = None
        for i, values in enumerate(arrays):
            values = np.asarray(values, dtype=float)
            if values.ndim != 1:
                raise MatchingError(
                    f"{pool} confounder column {i} must be 1-D"
                )
            if n_units is None:
                n_units = values.size
            elif values.size != n_units:
                raise MatchingError(
                    f"{pool} confounder columns disagree on pool size"
                )
            columns.append(
                _log_confounder_column(values, f"column {i} ({pool})")
            )
        return np.column_stack(columns).reshape(n_units, len(arrays))

    log_c = _matrix(control_confounders, "control")
    log_t = _matrix(treatment_confounders, "treatment")
    n_control, n_treatment = log_c.shape[0], log_t.shape[0]

    def _accounted(summary: MatchingSummary, n_candidates: int) -> MatchingSummary:
        obs.count("matching.runs")
        obs.count("matching.pool.control", summary.n_control)
        obs.count("matching.pool.treatment", summary.n_treatment)
        obs.count("matching.candidates", n_candidates)
        obs.count("matching.pairs", summary.n_matched)
        return summary

    if n_control == 0 or n_treatment == 0:
        return _accounted(
            MatchingSummary(
                pairs=(), n_control=n_control, n_treatment=n_treatment,
                caliper=caliper,
            ),
            0,
        )
    if caliper <= 0:
        raise MatchingError(f"caliper must be positive, got {caliper}")
    accepted, n_candidates = _greedy_index_pairs(
        log_c, log_t, caliper, max_pairs
    )
    return _accounted(
        MatchingSummary(
            pairs=tuple(
                MatchedPair(c, t, dist) for c, t, dist in accepted
            ),
            n_control=n_control,
            n_treatment=n_treatment,
            caliper=caliper,
        ),
        n_candidates,
    )


def _greedy_index_pairs(
    log_c: np.ndarray,
    log_t: np.ndarray,
    caliper: float,
    max_pairs: int | None,
) -> tuple[list[tuple[int, int, float]], int]:
    """The deterministic globally-greedy core, over log-space matrices.

    Returns accepted ``(control_index, treatment_index, distance)``
    triples (in acceptance order) and the caliper-compatible candidate
    count. The ``lexsort`` tie-break on (distance, control, treatment)
    makes the result a pure function of the matrices, which is what lets
    the object and columnar paths guarantee identical pairs.
    """
    limit = math.log(1.0 + caliper)
    n_control, n_confounders = log_c.shape
    n_treatment = log_t.shape[0]

    # Enumerate caliper-compatible candidate pairs in chunks of control rows
    # so peak memory stays bounded for large pools.
    chunk = candidate_chunk_rows(n_treatment, n_confounders)
    ci_parts: list[np.ndarray] = []
    ti_parts: list[np.ndarray] = []
    dist_parts: list[np.ndarray] = []
    for start in range(0, n_control, chunk):
        block = log_c[start : start + chunk]
        # |log a - log b| per (control, treatment, confounder).
        diff = np.abs(block[:, None, :] - log_t[None, :, :])
        compatible = np.all(diff <= limit + 1e-12, axis=2)
        rows, cols = np.nonzero(compatible)
        if rows.size:
            ci_parts.append(rows + start)
            ti_parts.append(cols)
            dist_parts.append(diff.sum(axis=2)[rows, cols])
    if not ci_parts:
        return [], 0
    ci = np.concatenate(ci_parts)
    ti = np.concatenate(ti_parts)
    pair_distance = np.concatenate(dist_parts)
    order = np.lexsort((ti, ci, pair_distance))

    used_control = np.zeros(n_control, dtype=bool)
    used_treatment = np.zeros(n_treatment, dtype=bool)
    accepted: list[tuple[int, int, float]] = []
    budget = ci.size if max_pairs is None else max_pairs
    for idx in order:
        if len(accepted) >= budget:
            break
        c, t = int(ci[idx]), int(ti[idx])
        if used_control[c] or used_treatment[t]:
            continue
        used_control[c] = True
        used_treatment[t] = True
        accepted.append((c, t, float(pair_distance[idx])))
    return accepted, int(ci.size)
