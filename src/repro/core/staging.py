"""Shared staging-directory discipline for atomic on-disk stores.

Both persistence layers — the world cache
(:class:`repro.datasets.cache.WorldCache`) and the DAG artifact store
(:class:`repro.dag.store.DagStore`) — publish entries the same way:
every file is written into a hidden ``.staging-*`` directory and made
visible by a single ``os.replace``. A process killed mid-store leaves
only an orphaned staging directory, which must eventually be reclaimed
without ever disturbing a *live* concurrent store.

The abandoned check here is deliberately paranoid about wall clocks.
Comparing ``time.time()`` against a single directory mtime is wrong
twice over: a forward clock step (NTP catch-up) makes an in-flight
store's staging directory look hours old the instant the step lands,
and writing *into* an already-created file never advances the directory
mtime at all, so a long single-file write looks idle. Instead:

* the storer touches a **heartbeat file** inside the staging directory
  before and between every artifact write (:func:`touch_heartbeat`), so
  liveness is stamped with the *current* clock throughout the store;
* the sweeper ages a candidate by the **newest** mtime across the
  directory and everything in it (heartbeat included), and treats
  non-positive ages — mtimes in the future, i.e. a clock stepped
  backwards — as fresh, never as abandoned.

A clock step can therefore delay a sweep (harmless; the next store
retries) but can no longer reap a staging directory another process is
actively writing.
"""

from __future__ import annotations

import shutil
import time
from pathlib import Path

__all__ = [
    "HEARTBEAT_NAME",
    "clear_heartbeat",
    "sweep_stale_staging",
    "touch_heartbeat",
]

#: Liveness marker inside a staging directory; removed before publish so
#: it never appears inside a visible entry.
HEARTBEAT_NAME = ".heartbeat"


def touch_heartbeat(staging: str | Path) -> None:
    """Stamp ``staging`` as live *now* (create or update the marker).

    Call between artifact writes: each touch re-dates the staging
    directory with the current clock, so a forward clock step mid-store
    stops making the directory look abandoned as soon as the next
    artifact lands.
    """
    try:
        (Path(staging) / HEARTBEAT_NAME).touch()
    except OSError:
        pass  # liveness marking is best-effort; the store itself decides


def clear_heartbeat(staging: str | Path) -> None:
    """Drop the liveness marker just before the staging dir publishes."""
    try:
        (Path(staging) / HEARTBEAT_NAME).unlink()
    except OSError:
        pass


def _newest_mtime(path: Path) -> float:
    """The most recent mtime across ``path`` and its direct entries.

    Scanning the entries matters: writing into an existing file updates
    the file's mtime but not the directory's, and the heartbeat file is
    itself just another entry here.
    """
    newest = path.stat().st_mtime
    for child in path.iterdir():
        try:
            newest = max(newest, child.stat().st_mtime)
        except OSError:
            continue
    return newest


def sweep_stale_staging(
    root: str | Path, *, prefix: str, max_age_s: float
) -> None:
    """Reclaim abandoned ``<prefix>*`` staging directories under ``root``.

    A candidate is abandoned only when the newest mtime anywhere inside
    it is *strictly more* than ``max_age_s`` in the past. Negative ages
    (timestamps in the future — the wall clock stepped backwards since
    the store wrote them) read as fresh: the sweep tolerates them and
    leaves the directory for a later pass rather than racing a possibly
    live writer. Every failure mode is a skip, never an error.
    """
    root = Path(root)
    try:
        candidates = list(root.iterdir())
    except OSError:
        return
    now = time.time()
    for path in candidates:
        if not path.name.startswith(prefix):
            continue
        try:
            age = now - _newest_mtime(path)
        except OSError:
            continue
        if age > max_age_s:
            shutil.rmtree(path, ignore_errors=True)
