"""Run-ledger observability: spans, counters, gauges, and manifests.

The pipeline's provenance layer. :mod:`repro.obs.ledger` holds the
mergeable event model (recorded in workers, merged deterministically in
the parent — see :func:`repro.core.executor.run_sharded`);
:mod:`repro.obs.manifest` assembles the per-run provenance record.
``repro build/report --trace`` serializes both.
"""

from .ledger import RunLedger, Span, count, current, gauge, scoped, span

__all__ = [
    "RunLedger",
    "Span",
    "count",
    "current",
    "gauge",
    "scoped",
    "span",
]
