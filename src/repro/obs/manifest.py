"""Per-run manifests: what exactly did this run execute?

A manifest is the provenance half of the observability layer: where the
:class:`~repro.obs.ledger.RunLedger` records what the pipeline *did*
(counters, spans), the manifest records what it *was* — the full world
configuration and its content hash, the generator code version, the
seed, the fault/sanitization settings, and the library versions the run
executed under. M-Lab-scale studies treat this record as first-class;
``repro build/report --trace`` writes it as ``manifest.json`` next to
the ledger stream.

Manifests deliberately exclude scheduling knobs (worker counts, cache
directories) and wall-clock timestamps: two runs that compute the same
world and report must produce **byte-identical manifests**, whatever
hardware or parallelism executed them.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import numpy as np

from .._version import __version__

__all__ = ["MANIFEST_FORMAT_VERSION", "run_manifest", "write_manifest"]

#: Bump when the manifest schema changes.
MANIFEST_FORMAT_VERSION = 1


def run_manifest(
    config=None,
    *,
    command: str,
    data_dir: str | None = None,
    extras: dict | None = None,
) -> dict:
    """Assemble the provenance manifest of one CLI run.

    ``config`` is the :class:`~repro.datasets.world.WorldConfig` the run
    built or loaded, or ``None`` when the run analyzed a pre-existing
    dataset directory (``report --data``), in which case ``data_dir``
    names it and the config block is ``None``. ``extras`` are
    command-specific top-level entries (e.g. ``repro sweep`` records its
    scenario grid and replicate seeds); they must be deterministic —
    no timestamps or scheduling knobs — to keep manifests byte-stable.
    """
    # Imported lazily: datasets.cache imports the builder, which imports
    # the ledger — a module-level import here would cycle.
    from ..datasets.cache import cache_key
    from ..datasets.io import config_payload

    config_block = None
    config_hash = None
    seed = None
    faults = None
    sanitize = None
    if config is not None:
        payload = config_payload(config)
        config_block = payload
        config_hash = cache_key(config)
        seed = config.seed
        faults = payload.get("faults")
        sanitize = bool(config.sanitize)
    manifest = {
        "manifest_format": MANIFEST_FORMAT_VERSION,
        "command": command,
        "code_version": __version__,
        "config": config_block,
        "config_hash": config_hash,
        "seed": seed,
        "faults": faults,
        "sanitize": sanitize,
        "data_dir": data_dir,
        "libraries": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
    }
    if extras:
        overlap = set(extras) & set(manifest)
        if overlap:
            raise ValueError(
                f"manifest extras shadow base fields: {sorted(overlap)}"
            )
        manifest.update(extras)
    return manifest


def write_manifest(manifest: dict, path: str | Path) -> None:
    """Persist a manifest with a stable key order (byte-reproducible)."""
    Path(path).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
