"""The run ledger: spans, counters, and gauges for one pipeline run.

Every stage of the pipeline (build → sanitize → analyze) accounts for
what it did in a :class:`RunLedger` — a mergeable bag of three event
kinds:

* **counters** — monotonically added integers (users built, samples
  dropped per sanitization rule, pairs matched, experiment verdicts).
  Merging adds counts, so per-shard ledgers sum to the serial totals.
* **gauges** — point-in-time values set once per run (dataset sizes,
  pool sizes). Merging takes the union; conflicting values for the same
  key raise, which keeps merges order-independent.
* **spans** — named wall/CPU durations, the generalization of
  :class:`repro.core.timing.StageTiming` to the whole pipeline. Spans
  nest by path-like names (``"build/chunk/dasu/US/0"``) and may carry a
  shard label. Merging concatenates; serialization applies a canonical
  sort, so merged ledgers are independent of completion order.

Workers record into a per-process *ambient* ledger installed by
:func:`scoped` (see :func:`repro.core.executor.run_sharded`); the parent
merges the returned shard ledgers in task-submission order. Because
counters add, gauges union, and spans sort canonically, the merged
ledger is **byte-identical for any worker count** once serialized with
:meth:`RunLedger.to_jsonl` — durations, the only nondeterministic
payload, are excluded from the stream unless ``include_timings`` is
explicitly requested.

The JSONL stream is the ``repro build/report --trace`` artifact; its
counter names are documented in ``docs/METHODOLOGY.md`` §8.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..exceptions import LedgerError
from ..core.timing import StageTiming

__all__ = [
    "RunLedger",
    "Span",
    "count",
    "current",
    "gauge",
    "scoped",
    "span",
]


@dataclass(frozen=True)
class Span:
    """One named duration, measured inside whichever process ran it."""

    name: str
    wall_s: float
    cpu_s: float
    shard: str | None = None


def _canonical_span_key(s: Span) -> tuple:
    return (s.name, s.shard or "", s.wall_s, s.cpu_s)


class RunLedger:
    """A mergeable collection of counters, gauges, and spans.

    Instances are plain picklable containers: workers build one per
    shard and ship it back through the process pool; the parent merges
    them with :meth:`merge`.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.spans: list[Span] = []

    # -- recording ---------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at 0)."""
        if int(amount) != amount:
            raise LedgerError(f"counter increments must be integers, got {amount!r}")
        self.counters[name] = self.counters.get(name, 0) + int(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``; re-setting to a different value raises."""
        value = float(value)
        if name in self.gauges and self.gauges[name] != value:
            raise LedgerError(
                f"gauge {name!r} already set to {self.gauges[name]!r}, "
                f"refusing to overwrite with {value!r}"
            )
        self.gauges[name] = value

    def add_span(self, span: Span) -> None:
        self.spans.append(span)

    @contextmanager
    def span(self, name: str, shard: str | None = None) -> Iterator[None]:
        """Record a :class:`Span` around the enclosed work."""
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            self.add_span(
                Span(
                    name=name,
                    wall_s=time.perf_counter() - wall0,
                    cpu_s=time.process_time() - cpu0,
                    shard=shard,
                )
            )

    @property
    def is_empty(self) -> bool:
        """Whether the ledger recorded nothing at all (the DAG store
        skips persisting empty stage shards)."""
        return not self.counters and not self.gauges and not self.spans

    # -- merging -----------------------------------------------------------

    def merge(self, other: "RunLedger") -> "RunLedger":
        """Fold ``other`` into this ledger; returns ``self``.

        Counter merging is addition, gauge merging is a union that
        rejects conflicts, and span merging is concatenation — each
        associative and (up to canonical serialization order)
        commutative, so any merge tree over the same shard ledgers
        yields the same serialized ledger.
        """
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            self.gauge(name, value)
        self.spans.extend(other.spans)
        return self

    # -- views ---------------------------------------------------------------

    def stage_timings(self, prefix: str | None = None) -> list[StageTiming]:
        """Spans as :class:`StageTiming` rows (the ``--profile`` view).

        ``prefix`` filters to spans under that path and strips it from
        the reported names, so ``stage_timings("report/")`` yields the
        per-fragment profile of the analysis stage.
        """
        rows = []
        for s in sorted(self.spans, key=_canonical_span_key):
            name = s.name
            if prefix is not None:
                if not name.startswith(prefix):
                    continue
                name = name[len(prefix):]
            rows.append(StageTiming(name=name, wall_s=s.wall_s, cpu_s=s.cpu_s))
        return rows

    # -- serialization -------------------------------------------------------

    def events(self, include_timings: bool = False) -> list[dict]:
        """The ledger as a deterministic, JSON-ready event list.

        Counters come first (sorted by name), then gauges (sorted by
        name), then spans (sorted by name, shard, duration). Durations
        are the only nondeterministic payload and are omitted unless
        ``include_timings`` — the default stream is **byte-stable for a
        fixed seed across any worker count**.
        """
        out: list[dict] = []
        for name in sorted(self.counters):
            out.append(
                {"type": "counter", "name": name, "value": self.counters[name]}
            )
        for name in sorted(self.gauges):
            out.append(
                {"type": "gauge", "name": name, "value": self.gauges[name]}
            )
        for s in sorted(self.spans, key=_canonical_span_key):
            event: dict = {"type": "span", "name": s.name, "shard": s.shard}
            if include_timings:
                event["wall_s"] = s.wall_s
                event["cpu_s"] = s.cpu_s
            out.append(event)
        return out

    def to_jsonl(self, include_timings: bool = False) -> str:
        """One JSON object per line, in canonical event order."""
        return "".join(
            json.dumps(event, sort_keys=True) + "\n"
            for event in self.events(include_timings=include_timings)
        )

    @classmethod
    def from_jsonl(cls, text: str) -> "RunLedger":
        """Rebuild a ledger from :meth:`to_jsonl` output.

        Spans serialized without timings come back with zero durations;
        everything else round-trips exactly.
        """
        ledger = cls()
        for line_no, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
                kind = event["type"]
                if kind == "counter":
                    ledger.count(event["name"], int(event["value"]))
                elif kind == "gauge":
                    ledger.gauge(event["name"], float(event["value"]))
                elif kind == "span":
                    ledger.add_span(
                        Span(
                            name=str(event["name"]),
                            wall_s=float(event.get("wall_s", 0.0)),
                            cpu_s=float(event.get("cpu_s", 0.0)),
                            shard=event.get("shard"),
                        )
                    )
                else:
                    raise LedgerError(f"unknown event type {kind!r}")
            except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
                raise LedgerError(f"bad ledger line {line_no}: {exc}") from None
        return ledger


# ---------------------------------------------------------------------------
# The ambient (per-process) ledger. Workers record through the free
# functions below; with no ledger installed they are no-ops, so
# instrumented code costs nothing on untraced runs.
# ---------------------------------------------------------------------------

_AMBIENT: RunLedger | None = None


def current() -> RunLedger | None:
    """The process's ambient ledger, or ``None`` outside :func:`scoped`."""
    return _AMBIENT


@contextmanager
def scoped(ledger: RunLedger | None = None) -> Iterator[RunLedger]:
    """Install ``ledger`` (or a fresh one) as the ambient ledger.

    Restores the previous ambient ledger on exit, so scopes nest; the
    executor opens one scope per shard task and merges the resulting
    ledgers in task-submission order.
    """
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = ledger if ledger is not None else RunLedger()
    try:
        yield _AMBIENT
    finally:
        _AMBIENT = previous


def count(name: str, amount: int = 1) -> None:
    """Add to a counter of the ambient ledger (no-op without one)."""
    if _AMBIENT is not None:
        _AMBIENT.count(name, amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge of the ambient ledger (no-op without one)."""
    if _AMBIENT is not None:
        _AMBIENT.gauge(name, value)


@contextmanager
def span(name: str, shard: str | None = None) -> Iterator[None]:
    """Record a span into the ambient ledger (pass-through without one)."""
    if _AMBIENT is None:
        yield
        return
    with _AMBIENT.span(name, shard=shard):
        yield
