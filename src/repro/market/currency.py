"""Currency conversion with purchasing-power-parity normalization.

The paper converts every monthly price to US dollars and then adjusts by
the country's PPP-to-market-exchange ratio (Sec. 2.1), so that "one dollar"
represents comparable purchasing power in every market. All prices inside
:mod:`repro` analyses are USD PPP; this module is the one place where local
prices are normalized.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import MarketError

__all__ = ["Currency", "USD", "to_usd_ppp"]


@dataclass(frozen=True)
class Currency:
    """A currency plus the two conversion factors the paper uses.

    Attributes
    ----------
    code:
        ISO-style currency code (synthetic markets use invented codes).
    units_per_usd:
        Market exchange rate: local currency units per US dollar.
    ppp_market_ratio:
        The PPP-to-market-exchange ratio. Values below 1 mean local prices
        buy more than the market exchange rate suggests (typical for
        developing economies), so PPP-adjusted dollar amounts come out
        *larger* than market-rate conversions.
    """

    code: str
    units_per_usd: float
    ppp_market_ratio: float

    def __post_init__(self) -> None:
        if self.units_per_usd <= 0:
            raise MarketError(
                f"{self.code}: exchange rate must be positive, "
                f"got {self.units_per_usd}"
            )
        if self.ppp_market_ratio <= 0:
            raise MarketError(
                f"{self.code}: PPP ratio must be positive, "
                f"got {self.ppp_market_ratio}"
            )

    def to_usd_market(self, amount_local: float) -> float:
        """Convert a local amount to USD at the market exchange rate."""
        return amount_local / self.units_per_usd

    def to_usd_ppp(self, amount_local: float) -> float:
        """Convert a local amount to PPP-adjusted USD."""
        return self.to_usd_market(amount_local) / self.ppp_market_ratio


#: The US dollar: the identity conversion.
USD = Currency(code="USD", units_per_usd=1.0, ppp_market_ratio=1.0)


def to_usd_ppp(amount_local: float, currency: Currency) -> float:
    """Convenience wrapper for :meth:`Currency.to_usd_ppp`."""
    return currency.to_usd_ppp(amount_local)
