"""Broadband retail-market substrate.

Models everything the paper's third dataset (the Google "Policy by the
Numbers" international plan survey) and the IMF macro data provide:

* :mod:`repro.market.currency` — currencies and PPP normalization;
* :mod:`repro.market.economy` — countries, regions, GDP per capita;
* :mod:`repro.market.countries` — the anchor profiles of real markets the
  paper names, plus synthetic fill to a ~100-country survey;
* :mod:`repro.market.plans` — retail plan records;
* :mod:`repro.market.market` — one country's plan market and its derived
  metrics (price of access, cost to upgrade);
* :mod:`repro.market.survey` — the global plan-survey generator;
* :mod:`repro.market.affordability` — cross-market affordability metrics.
"""

from .affordability import (
    cost_of_access_as_income_share,
    price_of_access_bin,
    upgrade_cost_bin,
)
from .currency import Currency, to_usd_ppp
from .economy import DevelopmentLevel, Economy, Region
from .market import CountryMarket
from .plans import BroadbandPlan, PlanTechnology
from .survey import PlanSurvey, generate_survey

__all__ = [
    "BroadbandPlan",
    "CountryMarket",
    "Currency",
    "DevelopmentLevel",
    "Economy",
    "PlanSurvey",
    "PlanTechnology",
    "Region",
    "cost_of_access_as_income_share",
    "generate_survey",
    "price_of_access_bin",
    "to_usd_ppp",
    "upgrade_cost_bin",
]
