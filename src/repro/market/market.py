"""One country's retail broadband market and its derived metrics.

A :class:`CountryMarket` bundles an economy with its plan listings and
exposes the three market features the paper studies:

* **price of broadband access** — the monthly cost of the cheapest plan
  with at least 1 Mbps download (Sec. 5);
* **cost of increasing capacity** — the slope of the price~capacity OLS
  fit, valid only when the correlation is at least moderate (Sec. 6);
* plan lookup helpers (nearest plan to a capacity, cheapest plan at least
  a capacity) used by the Table 4 case study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from ..core.regression import MarketRegression, fit_price_capacity
from ..exceptions import MarketError
from .economy import Economy
from .plans import BroadbandPlan

__all__ = ["ACCESS_CAPACITY_MBPS", "CountryMarket"]

#: The capacity floor defining "broadband access" for pricing purposes.
ACCESS_CAPACITY_MBPS = 1.0


@dataclass(frozen=True)
class CountryMarket:
    """The set of retail plans available in one country."""

    economy: Economy
    plans: tuple[BroadbandPlan, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.plans:
            raise MarketError(f"{self.economy.country}: market has no plans")
        for plan in self.plans:
            if plan.country != self.economy.country:
                raise MarketError(
                    f"plan {plan.name!r} belongs to {plan.country!r}, "
                    f"not {self.economy.country!r}"
                )

    @property
    def country(self) -> str:
        return self.economy.country

    def plans_at_least(self, capacity_mbps: float) -> tuple[BroadbandPlan, ...]:
        """All plans with download capacity >= ``capacity_mbps``."""
        return tuple(
            p for p in self.plans if p.download_mbps >= capacity_mbps
        )

    def cheapest_plan_at_least(
        self, capacity_mbps: float = ACCESS_CAPACITY_MBPS
    ) -> BroadbandPlan | None:
        """Cheapest plan at or above the capacity, or ``None`` if none exists."""
        candidates = self.plans_at_least(capacity_mbps)
        if not candidates:
            return None
        return min(candidates, key=lambda p: p.monthly_price_usd_ppp)

    def price_of_access(
        self, capacity_mbps: float = ACCESS_CAPACITY_MBPS
    ) -> float | None:
        """Monthly USD-PPP price of the cheapest >=1 Mbps plan (Sec. 5).

        Markets whose fastest plan is below the access floor price access
        at their fastest available plan instead, matching how the paper
        still assigns a price to sub-megabit markets like Botswana's
        512 kbps entry tier.
        """
        plan = self.cheapest_plan_at_least(capacity_mbps)
        if plan is None:
            fastest = max(self.plans, key=lambda p: p.download_mbps)
            return fastest.monthly_price_usd_ppp
        return plan.monthly_price_usd_ppp

    def nearest_plan(self, capacity_mbps: float) -> BroadbandPlan:
        """The plan whose download capacity is closest (log-scale) to the
        target — used to map a median measured capacity to the "typical"
        service of Table 4."""
        import math

        if capacity_mbps <= 0:
            raise MarketError(f"capacity must be positive, got {capacity_mbps}")
        return min(
            self.plans,
            key=lambda p: abs(math.log(p.download_mbps / capacity_mbps)),
        )

    @cached_property
    def regression(self) -> MarketRegression | None:
        """Price~capacity OLS over this market's plans (``None`` if the
        market has fewer than two distinct capacities)."""
        caps = [p.download_mbps for p in self.plans]
        prices = [p.monthly_price_usd_ppp for p in self.plans]
        if len(set(caps)) < 2:
            return None
        return fit_price_capacity(caps, prices)

    @property
    def upgrade_cost_usd_per_mbps(self) -> float | None:
        """Monthly cost of +1 Mbps, or ``None`` when the market's price and
        capacity are not at least moderately correlated (r <= 0.4) — the
        paper excludes such markets from the upgrade-cost analyses."""
        reg = self.regression
        if reg is None or not reg.moderately_correlated:
            return None
        return reg.slope_usd_per_mbps

    @property
    def max_capacity_mbps(self) -> float:
        return max(p.download_mbps for p in self.plans)

    @property
    def min_capacity_mbps(self) -> float:
        return min(p.download_mbps for p in self.plans)
