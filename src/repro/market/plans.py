"""Retail broadband plan records.

Mirrors the fields of the Google "Policy by the Numbers" dataset the paper
uses: download/upload speed, monthly traffic limit, monthly cost in local
currency, plus the PPP-normalized USD price the analyses operate on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..exceptions import MarketError
from .currency import Currency

__all__ = ["BroadbandPlan", "PlanTechnology"]


class PlanTechnology(enum.Enum):
    """Access technology a retail plan is delivered over."""

    FIBER = "fiber"
    CABLE = "cable"
    DSL = "dsl"
    WIRELESS = "wireless"
    SATELLITE = "satellite"

    @property
    def is_fixed_line(self) -> bool:
        return self in (PlanTechnology.FIBER, PlanTechnology.CABLE, PlanTechnology.DSL)


@dataclass(frozen=True)
class BroadbandPlan:
    """One retail broadband service plan.

    ``monthly_price_local`` is in the plan's local currency;
    ``monthly_price_usd_ppp`` is derived once at construction so analyses
    never re-convert. ``dedicated`` marks non-shared business-grade lines
    (the paper's Afghanistan example of a slow-but-expensive dedicated DSL
    plan that weakens the price~capacity correlation).
    """

    country: str
    isp: str
    name: str
    download_mbps: float
    upload_mbps: float
    monthly_price_local: float
    currency: Currency
    technology: PlanTechnology
    data_cap_gb: float | None = None
    dedicated: bool = False

    def __post_init__(self) -> None:
        if self.download_mbps <= 0 or self.upload_mbps <= 0:
            raise MarketError(
                f"{self.country}/{self.name}: speeds must be positive"
            )
        if self.upload_mbps > self.download_mbps:
            raise MarketError(
                f"{self.country}/{self.name}: upload exceeds download"
            )
        if self.monthly_price_local <= 0:
            raise MarketError(
                f"{self.country}/{self.name}: price must be positive"
            )
        if self.data_cap_gb is not None and self.data_cap_gb <= 0:
            raise MarketError(
                f"{self.country}/{self.name}: data cap must be positive"
            )

    @property
    def monthly_price_usd_ppp(self) -> float:
        """Monthly price in PPP-normalized US dollars."""
        return self.currency.to_usd_ppp(self.monthly_price_local)

    @property
    def is_capped(self) -> bool:
        return self.data_cap_gb is not None

    @property
    def usd_ppp_per_mbps(self) -> float:
        """Naive unit price of this single plan (not the market slope)."""
        return self.monthly_price_usd_ppp / self.download_mbps
