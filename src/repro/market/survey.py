"""Global retail-plan survey generator.

Produces, from a roster of :class:`~repro.market.countries.CountryProfile`,
the equivalent of the Google "Policy by the Numbers" dataset: a plan
listing per country with capacities, technologies, local-currency prices
and PPP-normalized USD prices. The generated survey preserves the
structural facts the paper relies on:

* prices rise roughly linearly with capacity inside a market, with noise;
* a minority of markets carry "oddball" plans (dedicated lines, capped
  wireless) that weaken the price~capacity correlation, so that roughly
  two-thirds of markets end up strongly correlated and ~80% at least
  moderately correlated (Sec. 6);
* regional cost-of-upgrade distributions match Table 5's shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.regression import MODERATE_CORRELATION, STRONG_CORRELATION
from ..exceptions import MarketError
from .countries import CountryProfile
from .market import CountryMarket
from .plans import BroadbandPlan, PlanTechnology

__all__ = ["PlanSurvey", "generate_market", "generate_survey"]

#: Marketing capacities (Mbps) that real plans are advertised at.
_MARKETING_CAPACITIES: tuple[float, ...] = (
    0.128, 0.256, 0.384, 0.512, 0.768, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0,
    8.0, 10.0, 12.0, 15.0, 16.0, 20.0, 25.0, 30.0, 40.0, 50.0, 60.0, 75.0,
    100.0, 150.0, 200.0, 300.0, 500.0, 1000.0,
)


def _snap_to_marketing(capacity: float) -> float:
    """Snap a raw capacity to the nearest advertised value (log scale)."""
    return min(
        _MARKETING_CAPACITIES,
        key=lambda m: abs(np.log(m / capacity)),
    )


def _technology_for_capacity(
    capacity_mbps: float, rng: np.random.Generator
) -> PlanTechnology:
    """A plausible fixed-line delivery technology for a plan capacity."""
    if capacity_mbps > 150.0:
        return PlanTechnology.FIBER
    if capacity_mbps > 25.0:
        return (
            PlanTechnology.FIBER
            if rng.random() < 0.5
            else PlanTechnology.CABLE
        )
    if capacity_mbps > 10.0:
        return (
            PlanTechnology.CABLE
            if rng.random() < 0.6
            else PlanTechnology.DSL
        )
    return PlanTechnology.DSL


def _isp_names(country: str) -> tuple[str, ...]:
    return (
        f"{country} Telecom",
        f"{country} Net",
        f"CityLink {country}",
        f"AirWave {country}",
    )


def generate_market(
    profile: CountryProfile, rng: np.random.Generator
) -> CountryMarket:
    """Generate one country's retail plan market from its profile."""
    currency = profile.currency
    isps = _isp_names(profile.name)

    # Geometric capacity ladder from the profile's range, snapped to
    # marketing values and deduplicated.
    if profile.n_plans == 1:
        raw = [profile.min_capacity_mbps]
    else:
        raw = np.geomspace(
            profile.min_capacity_mbps,
            profile.max_capacity_mbps,
            profile.n_plans,
        )
    ladder = sorted({_snap_to_marketing(float(c)) for c in raw})
    if len(ladder) < 2:
        # Degenerate range: force a two-step ladder so the market has a slope.
        ladder = sorted(
            {
                _snap_to_marketing(profile.min_capacity_mbps),
                _snap_to_marketing(profile.min_capacity_mbps * 2.0),
            }
        )

    plans: list[BroadbandPlan] = []
    for i, capacity in enumerate(ladder):
        price_usd = (
            profile.base_price_usd
            + profile.upgrade_slope_usd * (capacity - 1.0)
        )
        price_usd *= float(np.exp(rng.normal(0.0, profile.price_noise)))
        price_usd = max(3.0, price_usd)
        technology = _technology_for_capacity(capacity, rng)
        dedicated = False
        data_cap: float | None = None
        name = f"{technology.value}-{capacity:g}M"

        if rng.random() < profile.oddball_plan_rate:
            # Oddball plans weaken the market's price~capacity correlation:
            # either an expensive dedicated line or a cheap capped wireless
            # offering (the paper's Afghanistan example).
            if rng.random() < 0.5:
                dedicated = True
                price_usd *= float(rng.uniform(2.0, 4.0))
                name = f"dedicated-{capacity:g}M"
            else:
                technology = PlanTechnology.WIRELESS
                price_usd *= float(rng.uniform(0.45, 0.7))
                data_cap = float(rng.choice([5.0, 10.0, 20.0, 50.0]))
                name = f"wireless-{capacity:g}M"
        elif rng.random() < 0.25:
            # Fixed-line caps of the 2011-2013 era sat well above typical
            # monthly volumes (Comcast 250 GB, AT&T 150-250 GB); only
            # heavy households feel them.
            data_cap = float(rng.choice([150.0, 250.0, 300.0, 500.0]))

        upload_ratio = 0.5 if technology is PlanTechnology.FIBER else 0.12
        price_local = (
            price_usd * currency.ppp_market_ratio * currency.units_per_usd
        )
        plans.append(
            BroadbandPlan(
                country=profile.name,
                isp=isps[i % len(isps)],
                name=name,
                download_mbps=capacity,
                upload_mbps=max(0.064, capacity * upload_ratio),
                monthly_price_local=price_local,
                currency=currency,
                technology=technology,
                data_cap_gb=data_cap,
                dedicated=dedicated,
            )
        )
    return CountryMarket(economy=profile.economy(), plans=tuple(plans))


@dataclass(frozen=True)
class PlanSurvey:
    """The global plan survey: one :class:`CountryMarket` per country."""

    markets: dict[str, CountryMarket]

    def __post_init__(self) -> None:
        if not self.markets:
            raise MarketError("a survey needs at least one market")

    @property
    def countries(self) -> tuple[str, ...]:
        return tuple(sorted(self.markets))

    @property
    def n_plans(self) -> int:
        return sum(len(m.plans) for m in self.markets.values())

    def market(self, country: str) -> CountryMarket:
        try:
            return self.markets[country]
        except KeyError:
            raise MarketError(f"no market for country {country!r}") from None

    def all_plans(self) -> tuple[BroadbandPlan, ...]:
        return tuple(
            plan
            for country in self.countries
            for plan in self.markets[country].plans
        )

    def price_of_access(self) -> dict[str, float]:
        """Monthly USD-PPP cost of >=1 Mbps access, per country."""
        out: dict[str, float] = {}
        for country in self.countries:
            price = self.markets[country].price_of_access()
            if price is not None:
                out[country] = price
        return out

    def upgrade_costs(self) -> dict[str, float]:
        """Cost of +1 Mbps per country, for moderately-correlated markets."""
        out: dict[str, float] = {}
        for country in self.countries:
            cost = self.markets[country].upgrade_cost_usd_per_mbps
            if cost is not None:
                out[country] = cost
        return out

    def correlation_shares(self) -> tuple[float, float]:
        """Fractions of markets with strong (>0.8) and at least moderate
        (>0.4) price~capacity correlation — the Sec. 6 summary numbers."""
        correlations = [
            m.regression.correlation
            for m in self.markets.values()
            if m.regression is not None
        ]
        if not correlations:
            return 0.0, 0.0
        n = len(correlations)
        strong = sum(1 for r in correlations if r > STRONG_CORRELATION) / n
        moderate = (
            sum(1 for r in correlations if r > MODERATE_CORRELATION) / n
        )
        return strong, moderate


def generate_survey(
    profiles: Sequence[CountryProfile] | Iterable[CountryProfile],
    rng: np.random.Generator,
) -> PlanSurvey:
    """Generate the full multi-country plan survey."""
    markets: dict[str, CountryMarket] = {}
    for profile in profiles:
        if profile.name in markets:
            raise MarketError(f"duplicate country {profile.name!r}")
        markets[profile.name] = generate_market(profile, rng)
    return PlanSurvey(markets=markets)
