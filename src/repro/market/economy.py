"""Country economies: regions, development level, income.

Region taxonomy matches Table 5 of the paper (which splits Asia into
developed and developing "given the diversity of economies within the
area"); Oceania is carried for completeness (New Zealand appears in the
paper's price examples) but is not part of Table 5's rows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..exceptions import MarketError
from .currency import Currency

__all__ = ["DevelopmentLevel", "Economy", "Region", "TABLE5_REGIONS"]


class Region(enum.Enum):
    """Aggregated world regions as used in the paper's Table 5."""

    AFRICA = "Africa"
    ASIA = "Asia"
    CENTRAL_AMERICA_CARIBBEAN = "Central America/Caribbean"
    EUROPE = "Europe"
    MIDDLE_EAST = "Middle East"
    NORTH_AMERICA = "North America"
    SOUTH_AMERICA = "South America"
    OCEANIA = "Oceania"


class DevelopmentLevel(enum.Enum):
    """IMF-style development classification."""

    DEVELOPED = "developed"
    DEVELOPING = "developing"


#: The row labels of Table 5, in the paper's order. Asia appears three
#: times: aggregated, developed-only and developing-only.
TABLE5_REGIONS: tuple[str, ...] = (
    "Africa",
    "Asia (all)",
    "Asia (developed)",
    "Asia (developing)",
    "Central America/Caribbean",
    "Europe",
    "Middle East",
    "North America",
    "South America",
)


@dataclass(frozen=True)
class Economy:
    """Macro-economic description of one country."""

    country: str
    region: Region
    development: DevelopmentLevel
    gdp_per_capita_ppp_usd: float
    currency: Currency
    internet_penetration: float

    def __post_init__(self) -> None:
        if self.gdp_per_capita_ppp_usd <= 0:
            raise MarketError(
                f"{self.country}: GDP per capita must be positive"
            )
        if not 0.0 <= self.internet_penetration <= 1.0:
            raise MarketError(
                f"{self.country}: penetration must be a fraction in [0, 1]"
            )

    @property
    def monthly_income_ppp_usd(self) -> float:
        """Monthly GDP per capita in PPP dollars (the paper's income proxy)."""
        return self.gdp_per_capita_ppp_usd / 12.0

    def table5_rows(self) -> tuple[str, ...]:
        """The Table 5 row labels this economy contributes to."""
        if self.region is Region.ASIA:
            sub = (
                "Asia (developed)"
                if self.development is DevelopmentLevel.DEVELOPED
                else "Asia (developing)"
            )
            return ("Asia (all)", sub)
        if self.region is Region.OCEANIA:
            return ()
        return (self.region.value,)
