"""Country market profiles: real anchors plus synthetic fill.

The paper's analyses name a set of real markets (US, Japan, Botswana,
Saudi Arabia, India, Germany, Hong Kong, South Korea, Canada, Ghana,
Uganda, Afghanistan, Paraguay, Ivory Coast, China, Mexico, New Zealand,
the Philippines, Iran). We encode those as **anchor profiles** whose
market shape matches the numbers the paper reports (Table 4's typical
prices, Fig. 10's cost-to-upgrade placements, Sec. 7's India quality
profile), then fill each region with synthetic countries whose parameters
are drawn from region-level distributions calibrated to Table 5's
regional cost-of-upgrade shares.

Every draw flows from a caller-provided :class:`numpy.random.Generator`,
so a world seed reproduces the same survey byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from ..exceptions import MarketError
from .currency import Currency
from .economy import DevelopmentLevel, Economy, Region
from .plans import PlanTechnology

__all__ = [
    "ANCHOR_PROFILES",
    "CASE_STUDY_COUNTRIES",
    "CountryProfile",
    "build_profiles",
    "synthesize_profiles",
]

#: The four markets of the paper's Sec. 5 case study.
CASE_STUDY_COUNTRIES = ("Botswana", "Saudi Arabia", "US", "Japan")


@dataclass(frozen=True)
class CountryProfile:
    """Everything needed to synthesize one country's market and users.

    Market-shape fields (``base_price_usd``, ``upgrade_slope_usd``,
    capacity range, plan count) drive the retail-plan generator; network
    fields (``tech_mix``, ``extra_latency_ms``, ``loss_multiplier``) drive
    the access-network simulator; ``dasu_user_weight`` sets the country's
    share of the simulated Dasu population.
    """

    name: str
    region: Region
    development: DevelopmentLevel
    gdp_per_capita_ppp: float
    currency_code: str
    units_per_usd: float
    ppp_market_ratio: float
    internet_penetration: float
    # Market shape.
    base_price_usd: float
    upgrade_slope_usd: float
    min_capacity_mbps: float
    max_capacity_mbps: float
    n_plans: int
    price_noise: float
    oddball_plan_rate: float
    promoted_tier_mbps: float | None
    promoted_adoption: float
    # Network quality.
    tech_mix: Mapping[PlanTechnology, float] = field(default_factory=dict)
    extra_latency_ms: float = 20.0
    loss_multiplier: float = 1.0
    # Population.
    dasu_user_weight: float = 30.0

    def __post_init__(self) -> None:
        if self.base_price_usd <= 0 or self.upgrade_slope_usd < 0:
            raise MarketError(f"{self.name}: invalid market shape")
        if not 0 < self.min_capacity_mbps <= self.max_capacity_mbps:
            raise MarketError(f"{self.name}: invalid capacity range")
        if self.n_plans < 2:
            raise MarketError(f"{self.name}: a market needs >= 2 plans")
        total = sum(self.tech_mix.values())
        if self.tech_mix and abs(total - 1.0) > 1e-6:
            raise MarketError(
                f"{self.name}: tech mix sums to {total}, expected 1"
            )

    @property
    def currency(self) -> Currency:
        return Currency(
            code=self.currency_code,
            units_per_usd=self.units_per_usd,
            ppp_market_ratio=self.ppp_market_ratio,
        )

    def economy(self) -> Economy:
        return Economy(
            country=self.name,
            region=self.region,
            development=self.development,
            gdp_per_capita_ppp_usd=self.gdp_per_capita_ppp,
            currency=self.currency,
            internet_penetration=self.internet_penetration,
        )


_DEVELOPED_MIX: dict[PlanTechnology, float] = {
    PlanTechnology.FIBER: 0.22,
    PlanTechnology.CABLE: 0.36,
    PlanTechnology.DSL: 0.35,
    PlanTechnology.WIRELESS: 0.045,
    PlanTechnology.SATELLITE: 0.025,
}

_FIBER_HEAVY_MIX: dict[PlanTechnology, float] = {
    PlanTechnology.FIBER: 0.62,
    PlanTechnology.CABLE: 0.18,
    PlanTechnology.DSL: 0.17,
    PlanTechnology.WIRELESS: 0.025,
    PlanTechnology.SATELLITE: 0.005,
}

_DEVELOPING_MIX: dict[PlanTechnology, float] = {
    PlanTechnology.FIBER: 0.03,
    PlanTechnology.CABLE: 0.10,
    PlanTechnology.DSL: 0.53,
    PlanTechnology.WIRELESS: 0.24,
    PlanTechnology.SATELLITE: 0.10,
}

_INDIA_MIX: dict[PlanTechnology, float] = {
    PlanTechnology.FIBER: 0.02,
    PlanTechnology.CABLE: 0.10,
    PlanTechnology.DSL: 0.50,
    PlanTechnology.WIRELESS: 0.33,
    PlanTechnology.SATELLITE: 0.05,
}


def _anchor(**kwargs) -> CountryProfile:
    # Anchor markets carry no oddball plans by default so their Fig. 10
    # placement is stable (Afghanistan overrides this deliberately).
    defaults = dict(
        price_noise=0.08,
        oddball_plan_rate=0.0,
        promoted_tier_mbps=None,
        promoted_adoption=0.0,
        tech_mix=_DEVELOPED_MIX,
        extra_latency_ms=20.0,
        loss_multiplier=1.0,
        dasu_user_weight=30.0,
    )
    defaults.update(kwargs)
    return CountryProfile(**defaults)


#: Hand-calibrated profiles for every market the paper names. Values are
#: approximations of the paper-era (2011-2013) public figures; Table 4's
#: four case-study rows are matched most carefully.
ANCHOR_PROFILES: tuple[CountryProfile, ...] = (
    _anchor(
        name="US",
        region=Region.NORTH_AMERICA,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp=49_797.0,
        currency_code="USD",
        units_per_usd=1.0,
        ppp_market_ratio=1.0,
        internet_penetration=0.81,
        base_price_usd=20.0,
        upgrade_slope_usd=0.62,
        min_capacity_mbps=1.0,
        max_capacity_mbps=150.0,
        n_plans=20,
        promoted_tier_mbps=18.0,
        promoted_adoption=0.22,
        extra_latency_ms=20.0,
        dasu_user_weight=3759.0,
    ),
    _anchor(
        name="Japan",
        region=Region.ASIA,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp=34_532.0,
        currency_code="JPY",
        units_per_usd=98.0,
        ppp_market_ratio=1.04,
        internet_penetration=0.86,
        base_price_usd=22.0,
        upgrade_slope_usd=0.085,
        min_capacity_mbps=8.0,
        max_capacity_mbps=200.0,
        n_plans=12,
        price_noise=0.04,
        promoted_tier_mbps=100.0,
        promoted_adoption=0.30,
        tech_mix=_FIBER_HEAVY_MIX,
        extra_latency_ms=10.0,
        dasu_user_weight=73.0,
    ),
    _anchor(
        name="Botswana",
        region=Region.AFRICA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=14_993.0,
        currency_code="BWP",
        units_per_usd=8.4,
        ppp_market_ratio=0.52,
        internet_penetration=0.12,
        base_price_usd=150.0,
        upgrade_slope_usd=55.0,
        min_capacity_mbps=0.256,
        max_capacity_mbps=4.0,
        n_plans=6,
        promoted_tier_mbps=0.512,
        promoted_adoption=0.45,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=70.0,
        loss_multiplier=3.0,
        dasu_user_weight=67.0,
    ),
    _anchor(
        name="Saudi Arabia",
        region=Region.MIDDLE_EAST,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=29_114.0,
        currency_code="SAR",
        units_per_usd=3.75,
        ppp_market_ratio=0.58,
        internet_penetration=0.60,
        base_price_usd=62.0,
        upgrade_slope_usd=6.5,
        min_capacity_mbps=0.5,
        max_capacity_mbps=20.0,
        n_plans=8,
        promoted_tier_mbps=4.0,
        promoted_adoption=0.50,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=55.0,
        loss_multiplier=1.8,
        dasu_user_weight=120.0,
    ),
    _anchor(
        name="India",
        region=Region.ASIA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=5_050.0,
        currency_code="INR",
        units_per_usd=58.0,
        ppp_market_ratio=0.32,
        internet_penetration=0.15,
        base_price_usd=67.0,
        upgrade_slope_usd=0.7,
        min_capacity_mbps=0.5,
        max_capacity_mbps=50.0,
        n_plans=14,
        tech_mix=_INDIA_MIX,
        extra_latency_ms=140.0,
        loss_multiplier=30.0,
        dasu_user_weight=170.0,
    ),
    _anchor(
        name="Germany",
        region=Region.EUROPE,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp=42_000.0,
        currency_code="EUR",
        units_per_usd=0.75,
        ppp_market_ratio=1.02,
        internet_penetration=0.84,
        base_price_usd=20.0,
        upgrade_slope_usd=0.5,
        min_capacity_mbps=2.0,
        max_capacity_mbps=100.0,
        n_plans=12,
        extra_latency_ms=25.0,
        dasu_user_weight=180.0,
    ),
    _anchor(
        name="Canada",
        region=Region.NORTH_AMERICA,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp=42_500.0,
        currency_code="CAD",
        units_per_usd=1.03,
        ppp_market_ratio=1.08,
        internet_penetration=0.85,
        base_price_usd=24.0,
        upgrade_slope_usd=0.58,
        min_capacity_mbps=1.0,
        max_capacity_mbps=120.0,
        n_plans=14,
        extra_latency_ms=20.0,
        dasu_user_weight=170.0,
    ),
    _anchor(
        name="South Korea",
        region=Region.ASIA,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp=32_800.0,
        currency_code="KRW",
        units_per_usd=1_095.0,
        ppp_market_ratio=0.78,
        internet_penetration=0.84,
        base_price_usd=20.0,
        upgrade_slope_usd=0.06,
        min_capacity_mbps=10.0,
        max_capacity_mbps=500.0,
        n_plans=9,
        promoted_tier_mbps=100.0,
        promoted_adoption=0.40,
        tech_mix=_FIBER_HEAVY_MIX,
        extra_latency_ms=10.0,
        dasu_user_weight=90.0,
    ),
    _anchor(
        name="Hong Kong",
        region=Region.ASIA,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp=51_000.0,
        currency_code="HKD",
        units_per_usd=7.76,
        ppp_market_ratio=0.72,
        internet_penetration=0.73,
        base_price_usd=18.0,
        upgrade_slope_usd=0.05,
        min_capacity_mbps=10.0,
        max_capacity_mbps=1000.0,
        n_plans=8,
        promoted_tier_mbps=100.0,
        promoted_adoption=0.35,
        tech_mix=_FIBER_HEAVY_MIX,
        extra_latency_ms=12.0,
        dasu_user_weight=55.0,
    ),
    _anchor(
        name="Mexico",
        region=Region.CENTRAL_AMERICA_CARIBBEAN,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=16_500.0,
        currency_code="MXN",
        units_per_usd=12.8,
        ppp_market_ratio=0.62,
        internet_penetration=0.43,
        base_price_usd=35.0,
        upgrade_slope_usd=5.5,
        min_capacity_mbps=1.0,
        max_capacity_mbps=20.0,
        n_plans=9,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=45.0,
        loss_multiplier=1.6,
        dasu_user_weight=160.0,
    ),
    _anchor(
        name="New Zealand",
        region=Region.OCEANIA,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp=32_000.0,
        currency_code="NZD",
        units_per_usd=1.22,
        ppp_market_ratio=1.14,
        internet_penetration=0.82,
        base_price_usd=40.0,
        upgrade_slope_usd=0.9,
        min_capacity_mbps=1.0,
        max_capacity_mbps=100.0,
        n_plans=10,
        extra_latency_ms=60.0,
        dasu_user_weight=45.0,
    ),
    _anchor(
        name="Philippines",
        region=Region.ASIA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=6_300.0,
        currency_code="PHP",
        units_per_usd=42.0,
        ppp_market_ratio=0.42,
        internet_penetration=0.37,
        base_price_usd=45.0,
        upgrade_slope_usd=7.0,
        min_capacity_mbps=0.5,
        max_capacity_mbps=15.0,
        n_plans=8,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=65.0,
        loss_multiplier=2.5,
        dasu_user_weight=110.0,
    ),
    _anchor(
        name="Iran",
        region=Region.MIDDLE_EAST,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=16_200.0,
        currency_code="IRR",
        units_per_usd=24_800.0,
        ppp_market_ratio=0.30,
        internet_penetration=0.29,
        base_price_usd=150.0,
        upgrade_slope_usd=45.0,
        min_capacity_mbps=0.25,
        max_capacity_mbps=8.0,
        n_plans=7,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=70.0,
        loss_multiplier=2.2,
        dasu_user_weight=110.0,
    ),
    _anchor(
        name="Ghana",
        region=Region.AFRICA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=3_900.0,
        currency_code="GHS",
        units_per_usd=1.95,
        ppp_market_ratio=0.38,
        internet_penetration=0.12,
        base_price_usd=80.0,
        upgrade_slope_usd=28.0,
        min_capacity_mbps=0.25,
        max_capacity_mbps=4.0,
        n_plans=6,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=90.0,
        loss_multiplier=3.5,
        dasu_user_weight=35.0,
    ),
    _anchor(
        name="Uganda",
        region=Region.AFRICA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=1_700.0,
        currency_code="UGX",
        units_per_usd=2_580.0,
        ppp_market_ratio=0.33,
        internet_penetration=0.16,
        base_price_usd=90.0,
        upgrade_slope_usd=34.0,
        min_capacity_mbps=0.25,
        max_capacity_mbps=3.0,
        n_plans=5,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=100.0,
        loss_multiplier=4.0,
        dasu_user_weight=25.0,
    ),
    _anchor(
        name="Afghanistan",
        region=Region.ASIA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=1_900.0,
        currency_code="AFN",
        units_per_usd=55.0,
        ppp_market_ratio=0.31,
        internet_penetration=0.06,
        base_price_usd=100.0,
        upgrade_slope_usd=40.0,
        min_capacity_mbps=0.25,
        max_capacity_mbps=2.0,
        n_plans=6,
        price_noise=0.15,
        oddball_plan_rate=0.5,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=150.0,
        loss_multiplier=4.5,
        dasu_user_weight=12.0,
    ),
    _anchor(
        name="Paraguay",
        region=Region.SOUTH_AMERICA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=7_800.0,
        currency_code="PYG",
        units_per_usd=4_300.0,
        ppp_market_ratio=0.40,
        internet_penetration=0.36,
        base_price_usd=95.0,
        upgrade_slope_usd=120.0,
        min_capacity_mbps=0.25,
        max_capacity_mbps=2.0,
        n_plans=5,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=75.0,
        loss_multiplier=2.5,
        dasu_user_weight=25.0,
    ),
    _anchor(
        name="Ivory Coast",
        region=Region.AFRICA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=2_900.0,
        currency_code="XOF",
        units_per_usd=494.0,
        ppp_market_ratio=0.42,
        internet_penetration=0.08,
        base_price_usd=110.0,
        upgrade_slope_usd=140.0,
        min_capacity_mbps=0.25,
        max_capacity_mbps=2.0,
        n_plans=5,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=120.0,
        loss_multiplier=3.5,
        dasu_user_weight=15.0,
    ),
    _anchor(
        name="China",
        region=Region.ASIA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=11_500.0,
        currency_code="CNY",
        units_per_usd=6.2,
        ppp_market_ratio=0.55,
        internet_penetration=0.45,
        base_price_usd=25.0,
        upgrade_slope_usd=0.85,
        min_capacity_mbps=1.0,
        max_capacity_mbps=50.0,
        n_plans=12,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=70.0,
        loss_multiplier=2.0,
        dasu_user_weight=220.0,
    ),
    _anchor(
        name="UK",
        region=Region.EUROPE,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp=36_000.0,
        currency_code="GBP",
        units_per_usd=0.64,
        ppp_market_ratio=1.05,
        internet_penetration=0.87,
        base_price_usd=18.0,
        upgrade_slope_usd=0.45,
        min_capacity_mbps=2.0,
        max_capacity_mbps=100.0,
        n_plans=14,
        extra_latency_ms=16.0,
        dasu_user_weight=260.0,
    ),
    _anchor(
        name="France",
        region=Region.EUROPE,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp=36_100.0,
        currency_code="EUR",
        units_per_usd=0.75,
        ppp_market_ratio=1.05,
        internet_penetration=0.82,
        base_price_usd=20.0,
        upgrade_slope_usd=0.30,
        min_capacity_mbps=2.0,
        max_capacity_mbps=100.0,
        n_plans=12,
        extra_latency_ms=18.0,
        dasu_user_weight=220.0,
    ),
    _anchor(
        name="Italy",
        region=Region.EUROPE,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp=33_100.0,
        currency_code="EUR",
        units_per_usd=0.75,
        ppp_market_ratio=0.98,
        internet_penetration=0.58,
        base_price_usd=22.0,
        upgrade_slope_usd=0.8,
        min_capacity_mbps=2.0,
        max_capacity_mbps=50.0,
        n_plans=10,
        extra_latency_ms=24.0,
        dasu_user_weight=160.0,
    ),
    _anchor(
        name="Spain",
        region=Region.EUROPE,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp=31_000.0,
        currency_code="EUR",
        units_per_usd=0.75,
        ppp_market_ratio=0.95,
        internet_penetration=0.72,
        base_price_usd=28.0,
        upgrade_slope_usd=1.1,
        min_capacity_mbps=1.0,
        max_capacity_mbps=50.0,
        n_plans=10,
        extra_latency_ms=26.0,
        dasu_user_weight=150.0,
    ),
    _anchor(
        name="Sweden",
        region=Region.EUROPE,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp=42_000.0,
        currency_code="SEK",
        units_per_usd=6.8,
        ppp_market_ratio=1.25,
        internet_penetration=0.93,
        base_price_usd=20.0,
        upgrade_slope_usd=0.25,
        min_capacity_mbps=8.0,
        max_capacity_mbps=250.0,
        n_plans=10,
        promoted_tier_mbps=100.0,
        promoted_adoption=0.25,
        tech_mix=_FIBER_HEAVY_MIX,
        extra_latency_ms=18.0,
        dasu_user_weight=90.0,
    ),
    _anchor(
        name="Australia",
        region=Region.OCEANIA,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp=42_600.0,
        currency_code="AUD",
        units_per_usd=0.97,
        ppp_market_ratio=1.3,
        internet_penetration=0.83,
        base_price_usd=30.0,
        upgrade_slope_usd=1.4,
        min_capacity_mbps=1.0,
        max_capacity_mbps=100.0,
        n_plans=12,
        extra_latency_ms=60.0,
        dasu_user_weight=120.0,
    ),
    _anchor(
        name="Brazil",
        region=Region.SOUTH_AMERICA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=14_500.0,
        currency_code="BRL",
        units_per_usd=2.0,
        ppp_market_ratio=0.55,
        internet_penetration=0.49,
        base_price_usd=35.0,
        upgrade_slope_usd=6.0,
        min_capacity_mbps=0.5,
        max_capacity_mbps=15.0,
        n_plans=10,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=60.0,
        loss_multiplier=1.8,
        dasu_user_weight=300.0,
    ),
    _anchor(
        name="Russia",
        region=Region.EUROPE,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=23_500.0,
        currency_code="RUB",
        units_per_usd=31.0,
        ppp_market_ratio=0.45,
        internet_penetration=0.61,
        base_price_usd=15.0,
        upgrade_slope_usd=0.9,
        min_capacity_mbps=1.0,
        max_capacity_mbps=60.0,
        n_plans=12,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=50.0,
        loss_multiplier=1.4,
        dasu_user_weight=200.0,
    ),
    _anchor(
        name="Turkey",
        region=Region.MIDDLE_EAST,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=18_000.0,
        currency_code="TRY",
        units_per_usd=1.8,
        ppp_market_ratio=0.55,
        internet_penetration=0.45,
        base_price_usd=25.0,
        upgrade_slope_usd=3.0,
        min_capacity_mbps=1.0,
        max_capacity_mbps=20.0,
        n_plans=9,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=45.0,
        loss_multiplier=1.6,
        dasu_user_weight=130.0,
    ),
    _anchor(
        name="Indonesia",
        region=Region.ASIA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=8_900.0,
        currency_code="IDR",
        units_per_usd=9_700.0,
        ppp_market_ratio=0.35,
        internet_penetration=0.15,
        base_price_usd=40.0,
        upgrade_slope_usd=8.0,
        min_capacity_mbps=0.5,
        max_capacity_mbps=10.0,
        n_plans=8,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=80.0,
        loss_multiplier=2.5,
        dasu_user_weight=160.0,
    ),
    _anchor(
        name="Nigeria",
        region=Region.AFRICA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=5_300.0,
        currency_code="NGN",
        units_per_usd=157.0,
        ppp_market_ratio=0.45,
        internet_penetration=0.32,
        base_price_usd=70.0,
        upgrade_slope_usd=20.0,
        min_capacity_mbps=0.25,
        max_capacity_mbps=5.0,
        n_plans=6,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=100.0,
        loss_multiplier=3.0,
        dasu_user_weight=60.0,
    ),
    _anchor(
        name="South Africa",
        region=Region.AFRICA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=12_100.0,
        currency_code="ZAR",
        units_per_usd=8.2,
        ppp_market_ratio=0.55,
        internet_penetration=0.41,
        base_price_usd=45.0,
        upgrade_slope_usd=8.0,
        min_capacity_mbps=0.5,
        max_capacity_mbps=10.0,
        n_plans=8,
        tech_mix=_DEVELOPING_MIX,
        extra_latency_ms=90.0,
        loss_multiplier=2.0,
        dasu_user_weight=90.0,
    ),
)

# Region-level parameter distributions for synthetic fill countries,
# calibrated so that the regional cost-of-upgrade shares land near the
# paper's Table 5. Slopes are drawn log-uniformly from (low, high).
_REGION_SLOPE_RANGES: dict[tuple[Region, DevelopmentLevel], tuple[float, float]] = {
    (Region.AFRICA, DevelopmentLevel.DEVELOPING): (3.0, 300.0),
    (Region.ASIA, DevelopmentLevel.DEVELOPED): (0.03, 0.3),
    (Region.ASIA, DevelopmentLevel.DEVELOPING): (0.5, 80.0),
    (Region.CENTRAL_AMERICA_CARIBBEAN, DevelopmentLevel.DEVELOPING): (4.0, 11.0),
    (Region.EUROPE, DevelopmentLevel.DEVELOPED): (0.15, 1.2),
    (Region.EUROPE, DevelopmentLevel.DEVELOPING): (0.3, 2.5),
    (Region.MIDDLE_EAST, DevelopmentLevel.DEVELOPING): (0.6, 100.0),
    (Region.MIDDLE_EAST, DevelopmentLevel.DEVELOPED): (0.3, 2.0),
    (Region.NORTH_AMERICA, DevelopmentLevel.DEVELOPED): (0.4, 0.95),
    (Region.SOUTH_AMERICA, DevelopmentLevel.DEVELOPING): (0.5, 50.0),
    (Region.OCEANIA, DevelopmentLevel.DEVELOPED): (0.5, 2.0),
}

# (region, development, count) for the synthetic fill; roughly matches the
# country mix of the Google survey once the 19 anchors are added.
_FILL_PLAN: tuple[tuple[Region, DevelopmentLevel, int], ...] = (
    (Region.AFRICA, DevelopmentLevel.DEVELOPING, 14),
    (Region.ASIA, DevelopmentLevel.DEVELOPED, 5),
    (Region.ASIA, DevelopmentLevel.DEVELOPING, 7),
    (Region.CENTRAL_AMERICA_CARIBBEAN, DevelopmentLevel.DEVELOPING, 6),
    (Region.EUROPE, DevelopmentLevel.DEVELOPED, 11),
    (Region.EUROPE, DevelopmentLevel.DEVELOPING, 3),
    (Region.MIDDLE_EAST, DevelopmentLevel.DEVELOPING, 4),
    (Region.MIDDLE_EAST, DevelopmentLevel.DEVELOPED, 1),
    (Region.NORTH_AMERICA, DevelopmentLevel.DEVELOPED, 1),
    (Region.SOUTH_AMERICA, DevelopmentLevel.DEVELOPING, 7),
)

_REGION_CODES = {
    Region.AFRICA: "AF",
    Region.ASIA: "AS",
    Region.CENTRAL_AMERICA_CARIBBEAN: "CA",
    Region.EUROPE: "EU",
    Region.MIDDLE_EAST: "ME",
    Region.NORTH_AMERICA: "NA",
    Region.SOUTH_AMERICA: "SA",
    Region.OCEANIA: "OC",
}

_SYLLABLES = (
    "ba", "ka", "do", "lu", "mi", "ra", "so", "te", "va", "zo",
    "na", "pe", "qi", "ru", "sa", "to", "ul", "an", "or", "en",
)


def _synthetic_name(region: Region, index: int, rng: np.random.Generator) -> str:
    """A pronounceable fictional country name, tagged with its region."""
    parts = [ _SYLLABLES[int(rng.integers(len(_SYLLABLES)))] for _ in range(3) ]
    stem = "".join(parts).capitalize()
    return f"{stem} ({_REGION_CODES[region]}{index:02d})"


def _log_uniform(rng: np.random.Generator, low: float, high: float) -> float:
    return float(np.exp(rng.uniform(np.log(low), np.log(high))))


def synthesize_profiles(
    rng: np.random.Generator,
    fill_plan: tuple[tuple[Region, DevelopmentLevel, int], ...] = _FILL_PLAN,
) -> list[CountryProfile]:
    """Generate synthetic fill countries per the regional fill plan."""
    profiles: list[CountryProfile] = []
    for region, development, count in fill_plan:
        slope_low, slope_high = _REGION_SLOPE_RANGES[(region, development)]
        for i in range(count):
            slope = _log_uniform(rng, slope_low, slope_high)
            developed = development is DevelopmentLevel.DEVELOPED
            promoted_tier: float | None = None
            promoted_adoption = 0.0
            if developed:
                gdp = float(rng.uniform(26_000, 58_000))
                base = float(rng.uniform(14.0, 24.0))
                penetration = float(rng.uniform(0.6, 0.92))
                mix = _DEVELOPED_MIX
                extra_latency = float(rng.uniform(20.0, 70.0))
                loss_mult = float(rng.uniform(0.8, 1.5))
                max_cap = _log_uniform(rng, 50.0, 300.0)
                min_cap = float(rng.uniform(1.0, 4.0))
                if slope < 0.3:
                    # A "cheap upgrades" market looks like Japan/Korea:
                    # fiber-heavy, no slow fixed-line plans, a flagship
                    # 100 Mbps tier that many subscribers default to.
                    mix = _FIBER_HEAVY_MIX
                    min_cap = float(rng.uniform(8.0, 15.0))
                    max_cap = _log_uniform(rng, 100.0, 500.0)
                    promoted_tier = 100.0
                    promoted_adoption = float(rng.uniform(0.35, 0.55))
            else:
                gdp = _log_uniform(rng, 1_500, 20_000)
                base = min(190.0, 22.0 + 1.4 * slope + float(rng.uniform(0, 25)))
                penetration = float(rng.uniform(0.05, 0.5))
                mix = _DEVELOPING_MIX
                extra_latency = float(rng.uniform(40.0, 120.0))
                loss_mult = float(rng.uniform(0.7, 2.0))
                max_cap = _log_uniform(rng, 4.0, 40.0)
                min_cap = float(rng.uniform(0.5, 1.5))
            min_cap = min(min_cap, max_cap / 4.0)
            n_plans = int(rng.integers(5, 13))
            profiles.append(
                CountryProfile(
                    name=_synthetic_name(region, i, rng),
                    region=region,
                    development=development,
                    gdp_per_capita_ppp=gdp,
                    currency_code=f"{_REGION_CODES[region]}{i:02d}",
                    units_per_usd=_log_uniform(rng, 0.5, 3_000.0),
                    ppp_market_ratio=(
                        float(rng.uniform(0.85, 1.25))
                        if developed
                        else float(rng.uniform(0.3, 0.7))
                    ),
                    internet_penetration=penetration,
                    base_price_usd=base,
                    upgrade_slope_usd=slope,
                    min_capacity_mbps=min_cap,
                    max_capacity_mbps=max_cap,
                    n_plans=n_plans,
                    price_noise=float(rng.uniform(0.05, 0.15)),
                    oddball_plan_rate=float(rng.uniform(0.0, 0.25)),
                    promoted_tier_mbps=promoted_tier,
                    promoted_adoption=promoted_adoption,
                    tech_mix=mix,
                    extra_latency_ms=extra_latency,
                    loss_multiplier=loss_mult,
                    # Cheap-upgrade markets carry extra panel weight so the
                    # global high-capacity pool is not US-dominated (the
                    # paper's Dasu panel was only ~7% US).
                    dasu_user_weight=_log_uniform(
                        rng, *((150.0, 400.0) if promoted_tier else (60.0, 250.0))
                    ),
                )
            )
    return profiles


def build_profiles(
    rng: np.random.Generator,
    include_synthetic: bool = True,
    user_weight_scale: float = 1.0,
) -> list[CountryProfile]:
    """The full country roster: anchors plus (optionally) synthetic fill.

    ``user_weight_scale`` rescales every country's Dasu population weight,
    letting small test worlds keep the anchors' relative proportions.
    """
    profiles = list(ANCHOR_PROFILES)
    if include_synthetic:
        profiles.extend(synthesize_profiles(rng))
    if user_weight_scale != 1.0:
        profiles = [
            replace(p, dasu_user_weight=p.dasu_user_weight * user_weight_scale)
            for p in profiles
        ]
    return profiles
