"""Cross-market affordability metrics (Secs. 5-6 of the paper).

Helpers that place a market into the paper's price-of-access groups
(< $25, $25-60, > $60 per month) and cost-of-upgrade classes
(<= $0.50, $0.50-1.00, > $1.00 per +1 Mbps), plus the Table 4 metric of
access cost as a share of monthly GDP per capita.
"""

from __future__ import annotations

from ..core.binning import (
    PRICE_OF_ACCESS_BINS_USD,
    UPGRADE_COST_BINS_USD,
    Bin,
    explicit_bins,
)
from ..exceptions import MarketError
from .economy import Economy

__all__ = [
    "cost_of_access_as_income_share",
    "price_of_access_bin",
    "upgrade_cost_bin",
]

_PRICE_BINS = explicit_bins(PRICE_OF_ACCESS_BINS_USD)
_UPGRADE_BINS = explicit_bins(UPGRADE_COST_BINS_USD)


def price_of_access_bin(monthly_price_usd_ppp: float) -> Bin:
    """The Sec. 5 price-of-access group a monthly price falls into."""
    if monthly_price_usd_ppp <= 0:
        raise MarketError(
            f"price must be positive, got {monthly_price_usd_ppp}"
        )
    found = _PRICE_BINS.bin_of(monthly_price_usd_ppp)
    assert found is not None  # the last bin is unbounded
    return found


def upgrade_cost_bin(cost_usd_per_mbps: float) -> Bin:
    """The Sec. 6 cost-of-upgrade class a market slope falls into."""
    if cost_usd_per_mbps <= 0:
        raise MarketError(
            f"upgrade cost must be positive, got {cost_usd_per_mbps}"
        )
    found = _UPGRADE_BINS.bin_of(cost_usd_per_mbps)
    assert found is not None  # the last bin is unbounded
    return found


def cost_of_access_as_income_share(
    monthly_price_usd_ppp: float, economy: Economy
) -> float:
    """Monthly broadband cost as a fraction of monthly GDP per capita.

    Table 4 reports this as a percentage (e.g. 8.0% for Botswana); we
    return the fraction and leave formatting to the presentation layer.
    """
    if monthly_price_usd_ppp <= 0:
        raise MarketError(
            f"price must be positive, got {monthly_price_usd_ppp}"
        )
    return monthly_price_usd_ppp / economy.monthly_income_ppp_usd
